package species

import (
	"math"
	"testing"
)

func TestNewMechanismValidation(t *testing.T) {
	good := []Spec{{Name: "A"}, {Name: "B"}}
	cases := []struct {
		name  string
		specs []Spec
		rxns  []Reaction
	}{
		{"no species", nil, nil},
		{"empty name", []Spec{{Name: ""}}, nil},
		{"duplicate name", []Spec{{Name: "A"}, {Name: "A"}}, nil},
		{"negative background", []Spec{{Name: "A", Background: -1}}, nil},
		{"no reactants", good, []Reaction{{Rate: Constant{1}}}},
		{"three reactants", good, []Reaction{{Reactants: []int{0, 0, 1}, Rate: Constant{1}}}},
		{"bad reactant index", good, []Reaction{{Reactants: []int{7}, Rate: Constant{1}}}},
		{"bad product index", good, []Reaction{{Reactants: []int{0}, Products: []Term{{9, 1}}, Rate: Constant{1}}}},
		{"negative yield", good, []Reaction{{Reactants: []int{0}, Products: []Term{{1, -1}}, Rate: Constant{1}}}},
		{"nil rate", good, []Reaction{{Reactants: []int{0}}}},
	}
	for _, c := range cases {
		if _, err := NewMechanism(c.specs, c.rxns); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := NewMechanism(good, []Reaction{
		{Reactants: []int{0}, Products: []Term{{1, 1}}, Rate: Constant{1}},
	}); err != nil {
		t.Errorf("valid mechanism rejected: %v", err)
	}
}

func TestArrheniusRate(t *testing.T) {
	// Pure A.
	if k := (Arrhenius{A: 5}).K(298, 0.5); k != 5 {
		t.Errorf("constant Arrhenius K = %g", k)
	}
	// Activation energy: rate must grow with temperature.
	a := Arrhenius{A: 1e3, ER: 1000}
	if a.K(310, 0) <= a.K(290, 0) {
		t.Error("positive-ER rate does not grow with T")
	}
	want := 1e3 * math.Exp(-1000.0/298.0)
	if got := a.K(298, 0); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("K(298) = %g, want %g", got, want)
	}
	// Temperature power law.
	b := Arrhenius{A: 1, B: 2}
	if got := b.K(600, 0); math.Abs(got-4) > 1e-12 {
		t.Errorf("T^2 law: K(600) = %g, want 4", got)
	}
}

func TestPhotolysisRate(t *testing.T) {
	p := Photolysis{JMax: 0.5}
	if p.K(298, 0) != 0 {
		t.Error("photolysis at night must be zero")
	}
	if p.K(298, -0.3) != 0 {
		t.Error("negative sun must clamp to zero")
	}
	if got := p.K(298, 0.5); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("K(sun=0.5) = %g, want 0.25", got)
	}
	if got := p.K(250, 1); got != 0.5 {
		t.Errorf("photolysis must not depend on T: %g", got)
	}
}

func TestIndexLookup(t *testing.T) {
	m := StandardMechanism()
	if i := m.Index("O3"); i < 0 || m.Species[i].Name != "O3" {
		t.Errorf("Index(O3) = %d", i)
	}
	if m.Index("UNOBTAINIUM") != -1 {
		t.Error("unknown species found")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIndex on unknown species did not panic")
		}
	}()
	m.MustIndex("UNOBTAINIUM")
}

func TestStandardMechanismShape(t *testing.T) {
	m := StandardMechanism()
	// The paper's concentration array is A(35, layers, nodes).
	if m.N() != 35 {
		t.Fatalf("StandardMechanism has %d species, want 35", m.N())
	}
	if len(m.Reactions) < 40 {
		t.Errorf("only %d reactions; want a condensed-mechanism-scale set", len(m.Reactions))
	}
	// Every named species must participate in at least one reaction.
	used := make([]bool, m.N())
	for _, r := range m.Reactions {
		for _, s := range r.Reactants {
			used[s] = true
		}
		for _, p := range r.Products {
			used[p.Species] = true
		}
	}
	for i, u := range used {
		if !u {
			t.Errorf("species %s participates in no reaction", m.Species[i].Name)
		}
	}
}

func TestStandardMechanismStiffnessSpread(t *testing.T) {
	// The mechanism must span many orders of magnitude in loss
	// frequencies — that's what makes the chemistry stiff and the
	// Young–Boris hybrid necessary.
	m := StandardMechanism()
	k := make([]float64, len(m.Reactions))
	m.RateConstants(298, 1.0, k)
	min, max := math.Inf(1), 0.0
	for _, v := range k {
		if v <= 0 {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max/min < 1e6 {
		t.Errorf("rate constant spread %g too small for a stiff mechanism", max/min)
	}
}

func TestRateConstantsBufferCheck(t *testing.T) {
	m := StandardMechanism()
	defer func() {
		if recover() == nil {
			t.Error("short buffer did not panic")
		}
	}()
	m.RateConstants(298, 1, make([]float64, 3))
}

func TestProdLossSimpleChain(t *testing.T) {
	// A -> B with k=2: P_B = 2*[A], L_A = 2.
	specs := []Spec{{Name: "A"}, {Name: "B"}}
	m, err := NewMechanism(specs, []Reaction{
		{Label: "A->B", Reactants: []int{0}, Products: []Term{{1, 1}}, Rate: Constant{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := []float64{3, 0}
	k := make([]float64, 1)
	m.RateConstants(298, 0, k)
	P := make([]float64, 2)
	L := make([]float64, 2)
	m.ProdLoss(c, k, P, L)
	if L[0] != 2 || P[0] != 0 {
		t.Errorf("A: P=%g L=%g, want 0, 2", P[0], L[0])
	}
	if P[1] != 6 || L[1] != 0 {
		t.Errorf("B: P=%g L=%g, want 6, 0", P[1], L[1])
	}
}

func TestProdLossBimolecular(t *testing.T) {
	// A + B -> C with k=1.5.
	specs := []Spec{{Name: "A"}, {Name: "B"}, {Name: "C"}}
	m, err := NewMechanism(specs, []Reaction{
		{Reactants: []int{0, 1}, Products: []Term{{2, 1}}, Rate: Constant{1.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := []float64{2, 4, 0}
	k := []float64{0}
	m.RateConstants(298, 0, k)
	P := make([]float64, 3)
	L := make([]float64, 3)
	m.ProdLoss(c, k, P, L)
	if math.Abs(L[0]-1.5*4) > 1e-15 || math.Abs(L[1]-1.5*2) > 1e-15 {
		t.Errorf("loss coefficients: %g %g", L[0], L[1])
	}
	if math.Abs(P[2]-1.5*2*4) > 1e-15 {
		t.Errorf("P_C = %g, want 12", P[2])
	}
	// Rate consistency: dA/dt == dB/dt == -dC/dt.
	dA := P[0] - L[0]*c[0]
	dB := P[1] - L[1]*c[1]
	dC := P[2] - L[2]*c[2]
	if math.Abs(dA-dB) > 1e-12 || math.Abs(dA+dC) > 1e-12 {
		t.Errorf("rates inconsistent: dA=%g dB=%g dC=%g", dA, dB, dC)
	}
}

func TestProdLossSelfReaction(t *testing.T) {
	// A + A -> B with k=1: L_A = 2k[A], rate = k[A]^2.
	specs := []Spec{{Name: "A"}, {Name: "B"}}
	m, err := NewMechanism(specs, []Reaction{
		{Reactants: []int{0, 0}, Products: []Term{{1, 1}}, Rate: Constant{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := []float64{3, 0}
	k := []float64{0}
	m.RateConstants(298, 0, k)
	P := make([]float64, 2)
	L := make([]float64, 2)
	m.ProdLoss(c, k, P, L)
	if L[0] != 6 {
		t.Errorf("L_A = %g, want 6 (2k[A])", L[0])
	}
	if P[1] != 9 {
		t.Errorf("P_B = %g, want 9 (k[A]^2)", P[1])
	}
}

func TestBackgrounds(t *testing.T) {
	m := StandardMechanism()
	c := m.Backgrounds()
	if len(c) != m.N() {
		t.Fatalf("Backgrounds length %d", len(c))
	}
	if c[m.MustIndex("O3")] != 0.04 {
		t.Errorf("O3 background = %g", c[m.MustIndex("O3")])
	}
	for i, v := range c {
		if v < 0 {
			t.Errorf("negative background for %s", m.Species[i].Name)
		}
	}
}

func TestFlopsPerProdLossPositive(t *testing.T) {
	m := StandardMechanism()
	if m.FlopsPerProdLoss() < float64(len(m.Reactions)) {
		t.Errorf("FlopsPerProdLoss = %g, implausibly small", m.FlopsPerProdLoss())
	}
}

func TestNighttimePhotolysisOff(t *testing.T) {
	m := StandardMechanism()
	k := make([]float64, len(m.Reactions))
	m.RateConstants(298, 0, k)
	for i, r := range m.Reactions {
		if _, isPhoto := r.Rate.(Photolysis); isPhoto && k[i] != 0 {
			t.Errorf("photolysis %s active at night", r.Label)
		}
	}
}
