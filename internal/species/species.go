// Package species defines chemical mechanisms for the Airshed model: the
// species table and gas-phase reaction set whose stiff kinetics the
// chemistry operator integrates.
//
// The CIT airshed model the paper builds on uses a condensed photochemical
// mechanism with 35 species (the first dimension of the concentration
// array A(35, layers, nodes)). The original CIT mechanism is not publicly
// distributable, so this package ships StandardMechanism, a carbon-bond
// style condensed mechanism with exactly 35 species and a comparable
// reaction count, preserving the stiffness structure (fast radical cycles
// against slow reservoir species) that drives the cost profile of the
// chemistry phase. Mechanisms are data, so tests and studies can also
// construct small synthetic mechanisms with exact invariants.
package species

import (
	"fmt"
	"math"
)

// DepositionClass groups species by dry-deposition behaviour.
type DepositionClass int

// Deposition classes, from non-depositing to strongly depositing.
const (
	DepNone DepositionClass = iota
	DepSlow
	DepModerate
	DepFast
)

// Spec describes one chemical species.
type Spec struct {
	// Name is the mechanism name, e.g. "NO2".
	Name string
	// MW is the molecular weight in g/mol (informational; concentrations
	// are carried in ppm-like mixing units).
	MW float64
	// Dep is the dry-deposition class used by the vertical transport
	// operator's surface boundary condition.
	Dep DepositionClass
	// Background is the clean-air background mixing ratio used for
	// initial and boundary conditions (ppm).
	Background float64
}

// RateExpr evaluates a reaction rate constant as a function of temperature
// T (Kelvin) and the normalised solar actinic flux sun in [0, 1] (0 at
// night, 1 at local solar noon equinox).
type RateExpr interface {
	K(T, sun float64) float64
}

// Arrhenius is k = A * (T/300)^B * exp(-ER/T), the standard thermal rate
// form (ER is the activation energy divided by the gas constant, in K).
type Arrhenius struct {
	A  float64
	B  float64
	ER float64
}

// K implements RateExpr.
func (a Arrhenius) K(T, _ float64) float64 {
	k := a.A
	if a.B != 0 {
		k *= math.Pow(T/300.0, a.B)
	}
	if a.ER != 0 {
		k *= math.Exp(-a.ER / T)
	}
	return k
}

// Photolysis is k = JMax * sun: a photolytic rate proportional to actinic
// flux, zero at night.
type Photolysis struct {
	JMax float64
}

// K implements RateExpr.
func (p Photolysis) K(_, sun float64) float64 {
	if sun <= 0 {
		return 0
	}
	return p.JMax * sun
}

// Constant is a fixed rate constant, mainly for synthetic test mechanisms.
type Constant struct {
	Value float64
}

// K implements RateExpr.
func (c Constant) K(_, _ float64) float64 { return c.Value }

// Term is one product of a reaction with its stoichiometric yield.
type Term struct {
	Species int
	Yield   float64
}

// Reaction is an elementary (or lumped) reaction with one or two reactant
// species and arbitrary product terms. Rate units follow mixing-ratio
// kinetics: 1/min for unimolecular, 1/(ppm·min) for bimolecular.
type Reaction struct {
	// Label is a short human-readable form, e.g. "NO2+hv->NO+O".
	Label string
	// Reactants holds 1 or 2 species indices.
	Reactants []int
	// Products holds the product terms; yields may be fractional
	// (lumped mechanisms) and a species may appear on both sides.
	Products []Term
	// Rate is the rate-constant expression.
	Rate RateExpr
}

// Mechanism is a species table plus a reaction set.
type Mechanism struct {
	Species   []Spec
	Reactions []Reaction
	byName    map[string]int

	// Compiled form for the ProdLoss hot loop (built by NewMechanism):
	// reactant indices with y < 0 marking unimolecular reactions, and a
	// flattened product-term table indexed by [prodOff, prodEnd).
	rxnX, rxnY       []int32
	prodOff, prodEnd []int32
	prodSpec         []int32
	prodYield        []float64
}

// NewMechanism builds a mechanism and validates it: species names must be
// unique and non-empty, reactions must reference valid species with 1 or 2
// reactants, yields must be non-negative, and every rate expression must be
// non-nil.
func NewMechanism(specs []Spec, reactions []Reaction) (*Mechanism, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("species: mechanism needs at least one species")
	}
	byName := make(map[string]int, len(specs))
	for i, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("species: species %d has empty name", i)
		}
		if _, dup := byName[s.Name]; dup {
			return nil, fmt.Errorf("species: duplicate species %q", s.Name)
		}
		if s.Background < 0 {
			return nil, fmt.Errorf("species %s: negative background", s.Name)
		}
		byName[s.Name] = i
	}
	for ri, r := range reactions {
		if len(r.Reactants) < 1 || len(r.Reactants) > 2 {
			return nil, fmt.Errorf("species: reaction %d (%s) has %d reactants", ri, r.Label, len(r.Reactants))
		}
		for _, s := range r.Reactants {
			if s < 0 || s >= len(specs) {
				return nil, fmt.Errorf("species: reaction %d (%s) has bad reactant %d", ri, r.Label, s)
			}
		}
		for _, p := range r.Products {
			if p.Species < 0 || p.Species >= len(specs) {
				return nil, fmt.Errorf("species: reaction %d (%s) has bad product %d", ri, r.Label, p.Species)
			}
			if p.Yield < 0 {
				return nil, fmt.Errorf("species: reaction %d (%s) has negative yield", ri, r.Label)
			}
		}
		if r.Rate == nil {
			return nil, fmt.Errorf("species: reaction %d (%s) has nil rate", ri, r.Label)
		}
	}
	m := &Mechanism{Species: specs, Reactions: reactions, byName: byName}
	m.compile()
	return m, nil
}

// compile flattens the reaction set for the ProdLoss hot loop.
func (m *Mechanism) compile() {
	nr := len(m.Reactions)
	m.rxnX = make([]int32, nr)
	m.rxnY = make([]int32, nr)
	m.prodOff = make([]int32, nr)
	m.prodEnd = make([]int32, nr)
	for ri, r := range m.Reactions {
		m.rxnX[ri] = int32(r.Reactants[0])
		if len(r.Reactants) == 2 {
			m.rxnY[ri] = int32(r.Reactants[1])
		} else {
			m.rxnY[ri] = -1
		}
		m.prodOff[ri] = int32(len(m.prodSpec))
		for _, p := range r.Products {
			m.prodSpec = append(m.prodSpec, int32(p.Species))
			m.prodYield = append(m.prodYield, p.Yield)
		}
		m.prodEnd[ri] = int32(len(m.prodSpec))
	}
}

// N returns the number of species.
func (m *Mechanism) N() int { return len(m.Species) }

// Index returns the species index for a name, or -1 if absent.
func (m *Mechanism) Index(name string) int {
	if i, ok := m.byName[name]; ok {
		return i
	}
	return -1
}

// MustIndex is Index but panics on unknown names; for mechanism authoring
// and tests.
func (m *Mechanism) MustIndex(name string) int {
	i := m.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("species: unknown species %q", name))
	}
	return i
}

// RateConstants evaluates every reaction's rate constant into k, which must
// have length len(Reactions).
func (m *Mechanism) RateConstants(T, sun float64, k []float64) {
	if len(k) != len(m.Reactions) {
		panic(fmt.Sprintf("species: RateConstants buffer %d, want %d", len(k), len(m.Reactions)))
	}
	for i := range m.Reactions {
		k[i] = m.Reactions[i].Rate.K(T, sun)
	}
}

// ProdLoss computes, for concentrations c (length N), the production term
// P_i (in conc/min) and the first-order loss coefficient L_i (in 1/min) of
// every species, so that dc_i/dt = P_i - L_i * c_i. k must hold the
// pre-evaluated rate constants. P and L must have length N and are
// overwritten.
//
// Loss is linearised in the species itself: for a reaction X + Y -> ...,
// the loss coefficient of X is k*[Y] and of Y is k*[X]; for X + X -> ...
// it is 2k*[X]. This is the exact form the Young–Boris hybrid solver
// integrates.
func (m *Mechanism) ProdLoss(c, k, P, L []float64) {
	n := m.N()
	if len(c) != n || len(P) != n || len(L) != n {
		panic("species: ProdLoss buffer size mismatch")
	}
	clear(P[:n])
	clear(L[:n])
	// Local aliases of the compiled tables keep the hot loop free of
	// pointer chases through m, and reslicing k to the reaction count up
	// front lets the compiler drop the per-iteration bounds checks. The
	// iteration and accumulation order is exactly the naive loop's —
	// ProdLoss feeds a bit-identity guarantee, so only the instruction
	// stream may change here, never the float operation order.
	rxnX, rxnY := m.rxnX, m.rxnY
	prodOff, prodEnd := m.prodOff, m.prodEnd
	prodSpec, prodYield := m.prodSpec, m.prodYield
	k = k[:len(rxnX)]
	rxnY = rxnY[:len(rxnX)]
	prodOff = prodOff[:len(rxnX)]
	prodEnd = prodEnd[:len(rxnX)]
	for ri := range rxnX {
		kr := k[ri]
		if kr == 0 {
			continue
		}
		x := rxnX[ri]
		y := rxnY[ri]
		var rate float64
		switch {
		case y < 0:
			L[x] += kr
			rate = kr * c[x]
		case y == x:
			cx := c[x]
			L[x] += 2 * kr * cx
			rate = kr * cx * cx
		default:
			cx, cy := c[x], c[y]
			L[x] += kr * cy
			L[y] += kr * cx
			rate = kr * cx * cy
		}
		if rate == 0 {
			continue
		}
		for i := prodOff[ri]; i < prodEnd[ri]; i++ {
			P[prodSpec[i]] += prodYield[i] * rate
		}
	}
}

// FlopsPerProdLoss estimates the floating point work of one ProdLoss
// evaluation, used by the cost model: roughly 8 flops per reaction plus 2
// per product term.
func (m *Mechanism) FlopsPerProdLoss() float64 {
	terms := 0
	for i := range m.Reactions {
		terms += len(m.Reactions[i].Products)
	}
	return float64(8*len(m.Reactions) + 2*terms)
}

// Backgrounds returns a fresh concentration vector set to every species'
// background value.
func (m *Mechanism) Backgrounds() []float64 {
	c := make([]float64, m.N())
	for i, s := range m.Species {
		c[i] = s.Background
	}
	return c
}
