package species

import (
	"testing"
)

func TestAuditDetectsImbalance(t *testing.T) {
	// A -> B where A carries nitrogen and B does not: 1 N lost.
	m, err := NewMechanism(
		[]Spec{{Name: "A"}, {Name: "B"}},
		[]Reaction{{Label: "A->B", Reactants: []int{0},
			Products: []Term{{Species: 1, Yield: 1}}, Rate: Constant{1}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	comp := Composition{"A": {"N": 1}}
	ims := m.AuditElements(comp, 1e-9)
	if len(ims) != 1 {
		t.Fatalf("got %d imbalances, want 1: %v", len(ims), ims)
	}
	if ims[0].Element != "N" || ims[0].In != 1 || ims[0].Out != 0 || ims[0].Delta() != -1 {
		t.Errorf("imbalance: %+v", ims[0])
	}
	if ims[0].String() == "" {
		t.Error("empty imbalance string")
	}
}

func TestAuditBalancedReaction(t *testing.T) {
	// 2-reactant, fractional-yield balance: A + B -> 0.5 C + 0.5 D with
	// each product carrying 2 N.
	m, err := NewMechanism(
		[]Spec{{Name: "A"}, {Name: "B"}, {Name: "C"}, {Name: "D"}},
		[]Reaction{{Label: "bal", Reactants: []int{0, 1},
			Products: []Term{{Species: 2, Yield: 0.5}, {Species: 3, Yield: 0.5}},
			Rate:     Constant{1}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	comp := Composition{
		"A": {"N": 1}, "B": {"N": 1},
		"C": {"N": 2}, "D": {"N": 2},
	}
	if ims := m.AuditElements(comp, 1e-9); len(ims) != 0 {
		t.Errorf("balanced reaction flagged: %v", ims)
	}
}

// The standard mechanism must conserve sulfur exactly: SO2 -> SULF -> ASO4
// is a closed chain.
func TestStandardMechanismConservesSulfur(t *testing.T) {
	m := StandardMechanism()
	comp := StandardComposition()
	for _, im := range m.AuditElements(comp, 1e-9) {
		if im.Element == "S" {
			t.Errorf("sulfur leak: %s", im)
		}
	}
}

// Nitrogen conservation in the standard mechanism: every imbalance must be
// a documented lumping compromise, and the net NOy leak per reaction must
// be small (no reaction silently destroys or creates a full nitrogen).
func TestStandardMechanismNitrogenAudit(t *testing.T) {
	m := StandardMechanism()
	comp := StandardComposition()
	for _, im := range m.AuditElements(comp, 1e-9) {
		if im.Element != "N" {
			continue
		}
		if KnownNitrogenLeaks[im.Reaction] {
			continue
		}
		if d := im.Delta(); d < -1.0-1e-9 || d > 1e-9 {
			t.Errorf("undocumented nitrogen creation or multi-N destruction: %s", im)
		}
		// Every remaining leak must involve an operator species
		// (XO2N's NTR production path is balanced; leaks come from
		// radical-operator lumping). Just report them for audit
		// visibility in -v runs.
		t.Logf("lumping leak (expected for a condensed mechanism): %s", im)
	}
}

func TestStandardCompositionCoversNOy(t *testing.T) {
	m := StandardMechanism()
	comp := StandardComposition()
	for _, name := range []string{"NO", "NO2", "NO3", "N2O5", "HONO", "HNO3", "PAN", "PNA", "NTR"} {
		if m.Index(name) < 0 {
			t.Errorf("mechanism lacks %s", name)
		}
		if comp[name]["N"] <= 0 {
			t.Errorf("composition lacks nitrogen for %s", name)
		}
	}
	if comp["N2O5"]["N"] != 2 {
		t.Error("N2O5 must carry 2 N")
	}
}
