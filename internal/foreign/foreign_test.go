package foreign

import (
	"math"
	"testing"

	"airshed/internal/core"
	"airshed/internal/datasets"
	"airshed/internal/machine"
	"airshed/internal/popexp"
	"airshed/internal/species"
	"airshed/internal/vm"
)

func miniTrace(t *testing.T) *core.Trace {
	t.Helper()
	ds, err := datasets.Mini()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.Config{
		Dataset: ds, Machine: machine.CrayT3E(), Nodes: 1, Hours: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func testModel(t *testing.T) *popexp.Model {
	t.Helper()
	m, err := popexp.NewModel(species.StandardMechanism())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGroupsFor(t *testing.T) {
	if _, err := GroupsFor(3); err == nil {
		t.Error("3 nodes accepted")
	}
	for _, p := range []int{4, 8, 16, 64} {
		g, err := GroupsFor(p)
		if err != nil {
			t.Fatal(err)
		}
		if g.Input+g.Output+g.PopExp+g.Compute != p {
			t.Errorf("p=%d: groups %+v do not sum", p, g)
		}
		if g.Compute < 1 || g.PopExp < 1 {
			t.Errorf("p=%d: degenerate groups %+v", p, g)
		}
	}
}

func TestScenarioString(t *testing.T) {
	for _, s := range []Scenario{ScenarioA, ScenarioB, ScenarioC} {
		if s.String() == "" {
			t.Error("empty scenario name")
		}
	}
	if Scenario(9).String() == "" {
		t.Error("unknown scenario empty")
	}
}

// The foreign module (scenario A) must cost more than the native task,
// but only by a small fixed overhead — the paper's Figure 13.
func TestForeignOverheadSmallButPositive(t *testing.T) {
	tr := miniTrace(t)
	model := testModel(t)
	prof := machine.IntelParagon()
	for _, p := range []int{8, 16, 32} {
		native, err := ReplayCoupled(tr, model, prof, p, false, ScenarioA)
		if err != nil {
			t.Fatal(err)
		}
		frn, err := ReplayCoupled(tr, model, prof, p, true, ScenarioA)
		if err != nil {
			t.Fatal(err)
		}
		if frn.Ledger.Total <= native.Ledger.Total {
			t.Errorf("p=%d: foreign (%g) not slower than native (%g)",
				p, frn.Ledger.Total, native.Ledger.Total)
		}
		overhead := frn.Ledger.Total - native.Ledger.Total
		if overhead > 0.15*native.Ledger.Total {
			t.Errorf("p=%d: foreign overhead %.1f%% not small",
				p, 100*overhead/native.Ledger.Total)
		}
		if frn.CouplingSeconds <= native.CouplingSeconds {
			t.Errorf("p=%d: coupling seconds %g <= native %g",
				p, frn.CouplingSeconds, native.CouplingSeconds)
		}
	}
}

// Scenario ordering: A (interface node) costs at least B (direct), which
// costs at least C (variable to variable).
func TestScenarioOrdering(t *testing.T) {
	tr := miniTrace(t)
	model := testModel(t)
	prof := machine.IntelParagon()
	a, err := ReplayCoupled(tr, model, prof, 32, true, ScenarioA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayCoupled(tr, model, prof, 32, true, ScenarioB)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ReplayCoupled(tr, model, prof, 32, true, ScenarioC)
	if err != nil {
		t.Fatal(err)
	}
	if !(a.CouplingSeconds >= b.CouplingSeconds && b.CouplingSeconds >= c.CouplingSeconds) {
		t.Errorf("scenario coupling order violated: A=%g B=%g C=%g",
			a.CouplingSeconds, b.CouplingSeconds, c.CouplingSeconds)
	}
	// Scenario C equals the native path.
	native, err := ReplayCoupled(tr, model, prof, 32, false, ScenarioA)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Ledger.Total-native.Ledger.Total) > 1e-9*native.Ledger.Total {
		t.Errorf("scenario C (%g) != native (%g)", c.Ledger.Total, native.Ledger.Total)
	}
}

// The coupled ledger must contain PopExp time.
func TestCoupledLedgerHasPopExp(t *testing.T) {
	tr := miniTrace(t)
	model := testModel(t)
	res, err := ReplayCoupled(tr, model, machine.CrayT3E(), 16, true, ScenarioA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.ByCat[vm.CatPopExp] <= 0 {
		t.Error("no PopExp time in ledger")
	}
	if res.Ledger.ByCat[vm.CatChemistry] <= 0 {
		t.Error("no chemistry time in ledger")
	}
}

// The Fx optimal allocation must never lose to the fixed heuristic, must
// partition exactly, and must respect the 1-input/1-output layout.
func TestAutoGroups(t *testing.T) {
	tr := miniTrace(t)
	model := testModel(t)
	prof := machine.IntelParagon()
	for _, p := range []int{8, 16, 32, 64} {
		og, err := AutoGroups(tr, model, prof, p)
		if err != nil {
			t.Fatal(err)
		}
		if og.Input != 1 || og.Output != 1 {
			t.Errorf("p=%d: I/O groups %+v", p, og)
		}
		if og.Input+og.Output+og.Compute+og.PopExp != p {
			t.Errorf("p=%d: groups %+v do not sum to p", p, og)
		}
		ores, err := ReplayCoupledGroups(tr, model, prof, og, true, ScenarioA)
		if err != nil {
			t.Fatal(err)
		}
		hg, err := GroupsFor(p)
		if err != nil {
			t.Fatal(err)
		}
		hres, err := ReplayCoupledGroups(tr, model, prof, hg, true, ScenarioA)
		if err != nil {
			t.Fatal(err)
		}
		// The mapping optimises the modelled steady-state bottleneck;
		// on this short (2-hour) trace fill/drain effects can let the
		// heuristic edge ahead by a few percent, but the optimal
		// allocation must never be badly worse. (On the real 24-hour
		// LA trace the optimal allocation wins at every P; see
		// TestAutoGroupsWinOnRealTrace and the allocation ablation.)
		if ores.Ledger.Total > hres.Ledger.Total*1.05 {
			t.Errorf("p=%d: optimal allocation %g much slower than heuristic %g",
				p, ores.Ledger.Total, hres.Ledger.Total)
		}
	}
	if _, err := AutoGroups(tr, model, prof, 3); err == nil {
		t.Error("3 nodes accepted")
	}
	if _, err := AutoGroups(&core.Trace{}, model, prof, 8); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestReplayCoupledGroupsValidation(t *testing.T) {
	tr := miniTrace(t)
	model := testModel(t)
	bad := []CoupledGroups{
		{Input: 2, Output: 1, Compute: 4, PopExp: 1},
		{Input: 1, Output: 1, Compute: 0, PopExp: 1},
		{Input: 1, Output: 1, Compute: 4, PopExp: 0},
	}
	for i, g := range bad {
		if _, err := ReplayCoupledGroups(tr, model, machine.CrayT3E(), g, true, ScenarioA); err == nil {
			t.Errorf("case %d: bad groups accepted", i)
		}
	}
}

func TestCoupledTimeline(t *testing.T) {
	tr := miniTrace(t)
	model := testModel(t)
	res, err := ReplayCoupled(tr, model, machine.IntelParagon(), 16, true, ScenarioA)
	if err != nil {
		t.Fatal(err)
	}
	// 4 stages per hour.
	if want := 4 * len(tr.Hours); len(res.Timeline) != want {
		t.Fatalf("timeline has %d intervals, want %d", len(res.Timeline), want)
	}
	for _, iv := range res.Timeline {
		if iv.End < iv.Start {
			t.Errorf("interval %v runs backwards", iv)
		}
	}
	// The schedule releases PopExp for hour h only once hour h's compute
	// stage (including the gather) has finished.
	byStage := map[string]map[int]core.StageInterval{}
	for _, iv := range res.Timeline {
		if byStage[iv.Stage] == nil {
			byStage[iv.Stage] = map[int]core.StageInterval{}
		}
		byStage[iv.Stage][iv.Hour] = iv
	}
	for h := range byStage["popexp"] {
		if byStage["popexp"][h].Start < byStage["compute"][h].End-1e-12 {
			t.Errorf("hour %d: popexp started before compute finished", h)
		}
	}
}

func TestReplayCoupledErrors(t *testing.T) {
	tr := miniTrace(t)
	model := testModel(t)
	if _, err := ReplayCoupled(tr, model, machine.CrayT3E(), 3, true, ScenarioA); err == nil {
		t.Error("3 nodes accepted")
	}
	if _, err := ReplayCoupled(&core.Trace{}, model, machine.CrayT3E(), 8, true, ScenarioA); err == nil {
		t.Error("invalid trace accepted")
	}
}

// End-to-end: the real Coupler drives real PVM tasks and produces the
// same exposure as the serial model applied to the same snapshots.
func TestCouplerEndToEnd(t *testing.T) {
	ds, err := datasets.Mini()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.Config{
		Dataset: ds, Machine: machine.CrayT3E(), Nodes: 2, Hours: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := testModel(t)
	pop, err := popexp.SyntheticPopulation(ds.Grid(), 20e3, 20e3, 9e3, 2e6)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoupler(model, pop, ds.Shape.Species, ds.Shape.Layers, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ProcessHour(res.Final)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := model.ComputeHour(res.Final, ds.Shape.Species, ds.Shape.Layers, pop)
	if err != nil {
		t.Fatal(err)
	}
	for co := range want.Dose {
		for s := range want.Dose[co] {
			if math.Abs(got.Dose[co][s]-want.Dose[co][s]) > 1e-9*want.Dose[co][s] {
				t.Errorf("coupled dose[%d][%d] = %g, serial %g", co, s, got.Dose[co][s], want.Dose[co][s])
			}
		}
	}
	stats := c.Stats()
	if stats.MsgsSent == 0 || stats.BytesSent == 0 {
		t.Error("no traffic crossed the coupling boundary")
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProcessHour(res.Final); err == nil {
		t.Error("ProcessHour after Stop accepted")
	}
	if err := c.Stop(); err != nil {
		t.Error("second Stop errored")
	}
	if _, err := NewCoupler(model, pop, 35, 5, 0); err == nil {
		t.Error("zero workers accepted")
	}
}
