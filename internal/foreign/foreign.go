// Package foreign implements the paper's Section 6: coupling an external
// parallel module (the PVM PopExp program) to the Fx Airshed program
// through a shared collective-communication layer.
//
// In the paper's model a foreign module is an independent executable
// represented inside the native Fx program as a task on a node subgroup;
// data moves between the programs through variables mapped onto that
// task. Three data paths are considered (Figure 11): scenario A routes
// everything through the module's interface node (simplest, extra
// copies — the paper's prototype and the default here), scenario B sends
// directly to all module nodes, and scenario C transfers variable to
// variable (the idealised native path).
//
// The package provides both the real coupling (a Coupler that runs the
// PVM PopExp tasks and physically moves concentration data through pack/
// unpack buffers) and the cost model used by the Figure 13 reproduction
// (ReplayCoupled: a 4-stage pipelined schedule — input, compute, output,
// PopExp — with the per-scenario coupling overheads charged).
package foreign

import (
	"fmt"

	"airshed/internal/core"
	"airshed/internal/fx"
	"airshed/internal/machine"
	"airshed/internal/popexp"
	"airshed/internal/pvm"
	"airshed/internal/vm"
)

// Scenario selects the Figure 11 data path.
type Scenario int

const (
	// ScenarioA routes data through the foreign module's interface
	// node, which redistributes it internally (the prototype).
	ScenarioA Scenario = iota
	// ScenarioB sends directly to every node of the foreign module.
	ScenarioB
	// ScenarioC transfers directly between native and foreign
	// variables (the idealised, compiler-integrated path; equals the
	// native task's cost).
	ScenarioC
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case ScenarioA:
		return "A (interface node)"
	case ScenarioB:
		return "B (direct to module nodes)"
	case ScenarioC:
		return "C (variable to variable)"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// --- Real coupling: drive the PVM PopExp from native code ---

// Coupler owns a running PVM PopExp module and the representative-task
// plumbing to feed it hour snapshots.
type Coupler struct {
	machine *pvm.Machine
	rep     *pvm.Task
	workers []int
	model   *popexp.Model
	pop     *popexp.Population
	ns, nl  int
	stopped bool
}

// NewCoupler spawns a PVM PopExp module with the given number of worker
// tasks and returns the coupler whose representative task feeds it.
func NewCoupler(model *popexp.Model, pop *popexp.Population, ns, nl, workers int) (*Coupler, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("foreign: need at least one worker, got %d", workers)
	}
	c := &Coupler{
		machine: pvm.NewMachine(),
		model:   model,
		pop:     pop,
		ns:      ns,
		nl:      nl,
	}
	c.rep = c.machine.SpawnHandle("airshed-representative")
	for w := 0; w < workers; w++ {
		tid := c.machine.Spawn(fmt.Sprintf("popexp-worker-%d", w), func(t *pvm.Task) {
			// Worker errors surface as missing results in
			// ProcessHour; the loop exits on the stop message.
			_ = popexp.PVMWorker(t, model, pop, ns, nl)
		})
		c.workers = append(c.workers, tid)
	}
	return c, nil
}

// ProcessHour ships one hour's concentration array into the module and
// returns the hour's exposure. The interaction is the paper's
// representative-task pattern: the native side writes the mapped variable
// (here: packs and sends), the module computes concurrently with whatever
// the native program does next.
func (c *Coupler) ProcessHour(conc []float64) (*popexp.Exposure, error) {
	if c.stopped {
		return nil, fmt.Errorf("foreign: coupler already stopped")
	}
	return popexp.PVMMaster(c.rep, c.workers, c.model, c.pop, conc, c.ns, c.nl)
}

// Stats returns the representative task's traffic counters (the volume
// that crossed the native/foreign boundary).
func (c *Coupler) Stats() pvm.Stats { return c.rep.Stats() }

// Stop shuts the module down and waits for its tasks.
func (c *Coupler) Stop() error {
	if c.stopped {
		return nil
	}
	c.stopped = true
	if err := popexp.StopWorkers(c.rep, c.workers); err != nil {
		return err
	}
	c.machine.Wait()
	return nil
}

// --- Cost model: the Figure 13 pipeline ---

// CoupledGroups describes the node partition of the coupled application.
type CoupledGroups struct {
	Input   int
	Output  int
	PopExp  int
	Compute int
}

// GroupsFor partitions p nodes for the coupled pipeline: one input node,
// one output node, ~p/8 (at least 1) PopExp nodes, the rest compute.
// Requires p >= 4.
func GroupsFor(p int) (CoupledGroups, error) {
	if p < 4 {
		return CoupledGroups{}, fmt.Errorf("foreign: coupled pipeline needs at least 4 nodes, got %d", p)
	}
	pe := p / 8
	if pe < 1 {
		pe = 1
	}
	return CoupledGroups{Input: 1, Output: 1, PopExp: pe, Compute: p - 2 - pe}, nil
}

// CoupledResult prices one coupled run.
type CoupledResult struct {
	Ledger vm.Ledger
	// Timeline records the busy interval of each (stage, hour) — the
	// data behind the paper's Figure 12 pipeline diagram.
	Timeline []core.StageInterval
	// CouplingSeconds is the summed time of moving the hourly
	// concentration data into the PopExp module (the cost Figure 11's
	// scenarios trade off; compare native vs foreign runs to get the
	// foreign-module overhead of Figure 13).
	CouplingSeconds float64
	Groups          CoupledGroups
}

// AutoGroups sizes the coupled pipeline's node groups with the Fx
// processor-allocation machinery (fx.OptimalPipelineMapping, the paper's
// references [26, 27]): per-hour stage costs are estimated from the trace
// with the Section 4 model, and nodes are divided to minimise the
// pipeline bottleneck. This is the extension the paper sketches: "the
// techniques used in Fx to manage processor allocation among tasks can be
// extended to foreign modules".
func AutoGroups(tr *core.Trace, model *popexp.Model, prof *machine.Profile, p int) (CoupledGroups, error) {
	if err := tr.Validate(); err != nil {
		return CoupledGroups{}, err
	}
	if p < 4 {
		return CoupledGroups{}, fmt.Errorf("foreign: coupled pipeline needs at least 4 nodes, got %d", p)
	}
	hours := float64(len(tr.Hours))
	var inCost, outCost float64
	for hi := range tr.Hours {
		h := &tr.Hours[hi]
		inCost += prof.IOTime(h.InBytes) + prof.ComputeTime(h.PretransFlops)
		outCost += prof.IOTime(h.OutBytes)
	}
	inCost /= hours
	outCost /= hours
	chemHour := prof.ComputeTime(tr.SumChemFlops()) / hours
	transHour := prof.ComputeTime(tr.SumTransportFlops()) / hours
	aeroHour := prof.ComputeTime(tr.SumAeroFlops()) / hours
	popHour := prof.ComputeTime(popexp.WorkScale * float64(tr.Shape.Cells*model.Cohorts*model.NumSpecies()))

	compute := func(q int) float64 {
		// Chemistry parallel over cells, transport over layers,
		// aerosol replicated — the Section 4.1 model per stage.
		return fx.DataParallelCost(chemHour, tr.Shape.Cells, 0)(q) +
			fx.DataParallelCost(transHour, tr.Shape.Layers, 0)(q) +
			aeroHour
	}
	stages := []fx.TaskCost{
		fx.SequentialCost(inCost),
		compute,
		fx.SequentialCost(outCost),
		fx.DataParallelCost(popHour, tr.Shape.Cells, 0),
	}
	m, err := fx.OptimalPipelineMapping(p, stages)
	if err != nil {
		return CoupledGroups{}, err
	}
	g := CoupledGroups{Input: m.Nodes[0], Compute: m.Nodes[1], Output: m.Nodes[2], PopExp: m.Nodes[3]}
	// The replay layout uses exactly one input and one output node;
	// fold any extra sequential-stage nodes into the compute group.
	g.Compute += (g.Input - 1) + (g.Output - 1)
	g.Input, g.Output = 1, 1
	// Unassigned nodes (the optimizer may leave slack on cost plateaus)
	// also join the compute group.
	g.Compute += p - (g.Input + g.Output + g.PopExp + g.Compute)
	return g, nil
}

// ReplayCoupled prices the combined Airshed+PopExp application (the
// paper's Figure 13): the Airshed trace runs under the Section 5 pipeline
// extended with a PopExp stage, either as a native Fx task (foreign =
// false) or as a PVM foreign module coupled under the given scenario
// (foreign = true). Node groups are sized with the default heuristic
// (GroupsFor); use ReplayCoupledGroups for explicit or optimised sizes.
func ReplayCoupled(tr *core.Trace, model *popexp.Model, prof *machine.Profile, p int, foreign bool, scn Scenario) (*CoupledResult, error) {
	groups, err := GroupsFor(p)
	if err != nil {
		return nil, err
	}
	return ReplayCoupledGroups(tr, model, prof, groups, foreign, scn)
}

// ReplayCoupledGroups is ReplayCoupled with an explicit node partition.
func ReplayCoupledGroups(tr *core.Trace, model *popexp.Model, prof *machine.Profile, groups CoupledGroups, foreign bool, scn Scenario) (*CoupledResult, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if groups.Input != 1 || groups.Output != 1 {
		return nil, fmt.Errorf("foreign: the pipeline uses exactly one input and one output node, got %+v", groups)
	}
	if groups.Compute < 1 || groups.PopExp < 1 {
		return nil, fmt.Errorf("foreign: degenerate groups %+v", groups)
	}
	p := groups.Input + groups.Output + groups.Compute + groups.PopExp
	m, err := vm.New(prof, p)
	if err != nil {
		return nil, err
	}
	// Node layout: [input][output][popexp...][compute...].
	inputNode := 0
	outputNode := 1
	popNodes := make([]int, groups.PopExp)
	for i := range popNodes {
		popNodes[i] = 2 + i
	}
	compute := make([]int, groups.Compute)
	for i := range compute {
		compute[i] = 2 + groups.PopExp + i
	}
	rp, err := core.NewRedistPlans(tr.Shape, groups.Compute, prof.WordSize)
	if err != nil {
		return nil, err
	}
	res := &CoupledResult{Groups: groups}

	concBytes := tr.Shape.Bytes(prof.WordSize)
	// Per-hour PopExp work: the dose kernel over every cell, cohort and
	// tracked species.
	popFlopsHour := popexp.WorkScale * float64(tr.Shape.Cells*model.Cohorts*model.NumSpecies())

	cres := &core.ReplayResult{
		CommSeconds:  make(map[string]float64),
		RedistCounts: make(map[string]int),
	}
	for hi := range tr.Hours {
		ht := &tr.Hours[hi]
		// Stage 1: input.
		inputStart := m.Clock(inputNode)
		m.ChargeIO(inputNode, ht.InBytes)
		m.ChargeCompute(inputNode, vm.CatIO, ht.PretransFlops)
		inputDone := m.Clock(inputNode)
		res.Timeline = append(res.Timeline, core.StageInterval{Stage: "input", Hour: hi, Start: inputStart, End: inputDone})

		// Stage 2: compute.
		m.AdvanceTo(compute, inputDone)
		computeStart := m.GroupElapsed(compute)
		core.ChargeHourSteps(m, compute, rp, ht, cres)
		core.ChargeHourlyGather(m, compute, rp, cres)
		// Native-side handoff to PopExp. In the all-Fx version the
		// compiler-generated transfer spreads over the compute group
		// (every node ships its slice); in the foreign prototype the
		// single representative task packs the whole array through
		// the shared-library boundary and ships it synchronously —
		// the small fixed overhead of Figure 13 sits on the compute
		// critical path here.
		if foreign && scn != ScenarioC {
			m.ChargeCommAs(compute[0], vm.CatComm, 2, concBytes, 2*concBytes)
		} else {
			for _, n := range compute {
				m.ChargeCommAs(n, vm.CatComm, 1, concBytes/int64(groups.Compute), 0)
			}
		}
		m.BarrierGroup(compute)
		computeDone := m.GroupElapsed(compute)
		res.Timeline = append(res.Timeline, core.StageInterval{Stage: "compute", Hour: hi, Start: computeStart, End: computeDone})

		// Stage 3: output.
		m.AdvanceTo([]int{outputNode}, computeDone)
		outputStart := m.Clock(outputNode)
		m.ChargeCommAs(outputNode, vm.CatComm, 1, concBytes, 0)
		m.ChargeIO(outputNode, ht.OutBytes)
		res.Timeline = append(res.Timeline, core.StageInterval{Stage: "output", Hour: hi, Start: outputStart, End: m.Clock(outputNode)})

		// Stage 4: PopExp consumes the hour's concentrations.
		m.AdvanceTo(popNodes, computeDone)
		popStart := m.GroupElapsed(popNodes)
		couplingBefore := m.GroupElapsed(popNodes)
		chargeCoupling(m, popNodes, concBytes, foreign, scn)
		res.CouplingSeconds += m.GroupElapsed(popNodes) - couplingBefore
		// The exposure computation, block-partitioned over the
		// module's nodes.
		for i, n := range popNodes {
			share := blockShare(tr.Shape.Cells, groups.PopExp, i)
			m.ChargeCompute(n, vm.CatPopExp, popFlopsHour*share)
		}
		m.BarrierGroup(popNodes)
		res.Timeline = append(res.Timeline, core.StageInterval{Stage: "popexp", Hour: hi, Start: popStart, End: m.GroupElapsed(popNodes)})
	}
	res.Ledger = m.Ledger()
	return res, nil
}

// chargeCoupling prices the hour snapshot's journey into the PopExp
// module under the given path.
func chargeCoupling(m *vm.Machine, popNodes []int, bytes int64, foreign bool, scn Scenario) {
	w := len(popNodes)
	if !foreign || scn == ScenarioC {
		// Native task / idealised coupling: data lands directly in
		// the module's mapped variables, one slice per node.
		for _, n := range popNodes {
			m.ChargeCommAs(n, vm.CatComm, 1, bytes/int64(w), 0)
		}
		m.BarrierGroup(popNodes)
		return
	}
	switch scn {
	case ScenarioA:
		// Through the interface node: receive the whole array, pack/
		// unpack copies across the process boundary, then an internal
		// redistribution to every module node.
		iface := popNodes[0]
		m.ChargeCommAs(iface, vm.CatComm, 1, bytes, 2*bytes)
		for _, n := range popNodes[1:] {
			m.ChargeCommAs(iface, vm.CatComm, 1, bytes, 0)
			m.ChargeCommAs(n, vm.CatComm, 1, bytes, 0)
		}
	case ScenarioB:
		// Directly to all module nodes: the native side sends w
		// messages; each module node receives its slice plus the
		// boundary pack/unpack copy.
		for _, n := range popNodes {
			m.ChargeCommAs(n, vm.CatComm, 1, bytes/int64(w), 2*bytes/int64(w))
		}
	}
	m.BarrierGroup(popNodes)
}

// blockShare returns the fraction of n items node i owns under BLOCK on p
// nodes.
func blockShare(n, p, i int) float64 {
	bs := (n + p - 1) / p
	lo := i * bs
	hi := lo + bs
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return float64(hi-lo) / float64(n)
}
