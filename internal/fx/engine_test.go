package fx

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"airshed/internal/resilience"
	"airshed/internal/vm"
)

// TestEngineCoversItemSpace checks that Run visits every item exactly
// once in contiguous spans, for item counts around the chunking
// boundaries.
func TestEngineCoversItemSpace(t *testing.T) {
	e := NewEngine(3)
	defer e.Close()
	for _, n := range []int{0, 1, 2, 3, 11, 12, 13, 100, 1000} {
		visits := make([]int32, n)
		err := e.Run(n, func(worker, lo, hi int) error {
			if lo > hi || lo < 0 || hi > n {
				return fmt.Errorf("bad span [%d,%d) for n=%d", lo, hi, n)
			}
			if worker < 0 || worker >= e.Workers() {
				return fmt.Errorf("bad worker index %d", worker)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: item %d visited %d times", n, i, v)
			}
		}
	}
}

// TestEngineDeterministicError checks that the reported error is the
// first in chunk-index order regardless of execution interleaving.
func TestEngineDeterministicError(t *testing.T) {
	e := NewEngine(4)
	defer e.Close()
	errA := errors.New("a")
	errB := errors.New("b")
	for trial := 0; trial < 50; trial++ {
		err := e.Run(100, func(worker, lo, hi int) error {
			// Chunks containing items 30 and 70 both fail; item 30's
			// chunk has the lower chunk index so its error must win.
			if lo <= 30 && 30 < hi {
				return errA
			}
			if lo <= 70 && 70 < hi {
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: got %v, want wrapped %v", trial, err, errA)
		}
	}
}

// TestEngineWorkerIndexExclusive checks that a given worker index is
// never live in two chunk bodies at once — the property per-worker
// scratch pools rely on.
func TestEngineWorkerIndexExclusive(t *testing.T) {
	e := NewEngine(4)
	defer e.Close()
	busy := make([]atomic.Bool, e.Workers())
	err := e.Run(512, func(worker, lo, hi int) error {
		if !busy[worker].CompareAndSwap(false, true) {
			return fmt.Errorf("worker %d entered concurrently", worker)
		}
		defer busy[worker].Store(false)
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		_ = s
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEngineConcurrentRuns issues Run calls from many goroutines against
// one engine, as concurrent daemon jobs sharing SharedEngine do.
func TestEngineConcurrentRuns(t *testing.T) {
	e := NewEngine(runtime.GOMAXPROCS(0))
	defer e.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				var sum atomic.Int64
				if err := e.Run(64, func(worker, lo, hi int) error {
					for i := lo; i < hi; i++ {
						sum.Add(int64(i))
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if got := sum.Load(); got != 64*63/2 {
					t.Errorf("goroutine %d: sum %d, want %d", g, got, 64*63/2)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEngineStats checks the counters advance and the gauges drain back
// to zero once the pool is idle.
func TestEngineStats(t *testing.T) {
	e := NewEngine(2)
	defer e.Close()
	if err := e.Run(10, func(worker, lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Workers != 2 {
		t.Errorf("Workers = %d, want 2", st.Workers)
	}
	if st.Runs != 1 {
		t.Errorf("Runs = %d, want 1", st.Runs)
	}
	if st.Chunks < 1 {
		t.Errorf("Chunks = %d, want >= 1", st.Chunks)
	}
	if st.Active != 0 || st.Queued != 0 {
		t.Errorf("idle engine has Active=%d Queued=%d, want 0/0", st.Active, st.Queued)
	}
}

// TestSharedEngine checks the process-wide engine is a singleton sized
// to the host.
func TestSharedEngine(t *testing.T) {
	a, b := SharedEngine(), SharedEngine()
	if a != b {
		t.Fatal("SharedEngine returned distinct engines")
	}
	if a.Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("shared engine workers = %d, want GOMAXPROCS %d",
			a.Workers(), runtime.GOMAXPROCS(0))
	}
}

// TestEnginePanicContained panics inside a chunk body and asserts the
// containment contract: Run returns a PanicError carrying the stack,
// the panic gauge moves, and the pool keeps executing afterwards.
func TestEnginePanicContained(t *testing.T) {
	e := NewEngine(3)
	defer e.Close()

	err := e.Run(64, func(w, lo, hi int) error {
		if lo == 0 {
			panic("kernel exploded")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panicking chunk returned nil")
	}
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not carry the PanicError", err)
	}
	if pe.Value != "kernel exploded" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("contained panic lost its stack")
	}
	if got := e.Stats().Panics; got != 1 {
		t.Errorf("panic gauge = %d, want 1", got)
	}

	// Every worker survived: a full run still covers the item space.
	var visited atomic.Int64
	if err := e.Run(100, func(w, lo, hi int) error {
		visited.Add(int64(hi - lo))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if visited.Load() != 100 {
		t.Errorf("post-panic run covered %d of 100 items", visited.Load())
	}
}

// TestParallelNodesPanicContained panics one node body (on both the
// concurrent and serial paths) and asserts the group converts it to
// that node's error slot instead of dying.
func TestParallelNodesPanicContained(t *testing.T) {
	for _, goPar := range []bool{true, false} {
		rt := newRT(t, 4)
		rt.GoParallel = goPar
		err := rt.ParallelNodes(vm.CatOther, func(node int) (float64, error) {
			if node == 2 {
				panic(fmt.Sprintf("node %d exploded", node))
			}
			return 0, nil
		})
		var pe *resilience.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("goParallel=%v: error %v does not carry the PanicError", goPar, err)
		}
		if !strings.Contains(err.Error(), "node 2") {
			t.Errorf("goParallel=%v: panic not attributed to its node: %v", goPar, err)
		}
	}
}
