package fx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOptimalPipelineMappingBasics(t *testing.T) {
	// Two identical perfectly parallel stages on 8 nodes: 4 + 4.
	c := DataParallelCost(100, 1000, 0)
	m, err := OptimalPipelineMapping(8, []TaskCost{c, c})
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes[0]+m.Nodes[1] != 8 {
		t.Errorf("allocation %v does not use all nodes", m.Nodes)
	}
	if m.Nodes[0] != 4 || m.Nodes[1] != 4 {
		t.Errorf("unbalanced allocation %v for identical stages", m.Nodes)
	}
	if math.Abs(m.Bottleneck-25) > 1e-9 {
		t.Errorf("bottleneck %g, want 25", m.Bottleneck)
	}
}

func TestOptimalPipelineMappingSkewed(t *testing.T) {
	// A heavy stage (cost 90) and a light one (cost 10): the heavy stage
	// must get almost all nodes.
	heavy := DataParallelCost(90, 1000, 0)
	light := DataParallelCost(10, 1000, 0)
	m, err := OptimalPipelineMapping(10, []TaskCost{heavy, light})
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes[0] < 8 {
		t.Errorf("heavy stage got %d of 10 nodes", m.Nodes[0])
	}
	if m.Nodes[0]+m.Nodes[1] > 10 {
		t.Errorf("allocation %v exceeds budget", m.Nodes)
	}
}

func TestOptimalPipelineMappingSequentialStages(t *testing.T) {
	// The Airshed Section 5 structure: sequential input, parallel
	// compute, sequential output.
	stages := []TaskCost{
		SequentialCost(8),
		DataParallelCost(1000, 700, 1),
		SequentialCost(5),
	}
	m, err := OptimalPipelineMapping(64, stages)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes[0] != 1 || m.Nodes[2] != 1 {
		t.Errorf("sequential stages got %v nodes (want 1 each)", m.Nodes)
	}
	// The ceil staircase makes every p in [59, 62] equivalent
	// (ceil(700/p) = 12); the optimizer returns the smallest.
	if m.Nodes[1] < 59 || m.Nodes[1] > 62 {
		t.Errorf("compute stage got %d nodes, want 59-62", m.Nodes[1])
	}
	want := 1000*float64((700+58)/59)/700 + 1
	if math.Abs(m.Bottleneck-want) > 1e-9 {
		t.Errorf("bottleneck %g, want %g", m.Bottleneck, want)
	}
	if m.Latency < m.Bottleneck {
		t.Error("latency below bottleneck")
	}
}

func TestOptimalPipelineMappingParallelismLimit(t *testing.T) {
	// A stage limited to 5-way parallelism (the transport situation)
	// should not receive more than 5 useful nodes even when many are
	// available.
	limited := DataParallelCost(100, 5, 0)
	big := DataParallelCost(500, 10000, 0)
	m, err := OptimalPipelineMapping(32, []TaskCost{limited, big})
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes[0] > 5 {
		t.Errorf("layer-limited stage got %d nodes (useless beyond 5)", m.Nodes[0])
	}
}

func TestOptimalPipelineMappingErrors(t *testing.T) {
	if _, err := OptimalPipelineMapping(4, nil); err == nil {
		t.Error("no stages accepted")
	}
	if _, err := OptimalPipelineMapping(1, []TaskCost{SequentialCost(1), SequentialCost(1)}); err == nil {
		t.Error("fewer nodes than stages accepted")
	}
	increasing := func(p int) float64 { return float64(p) }
	if _, err := OptimalPipelineMapping(4, []TaskCost{increasing}); err == nil {
		t.Error("increasing cost function accepted")
	}
	negative := func(int) float64 { return -1 }
	if _, err := OptimalPipelineMapping(4, []TaskCost{negative}); err == nil {
		t.Error("negative cost accepted")
	}
}

// Property: the optimal bottleneck is never worse than an even split, and
// allocations always respect the budget with every stage >= 1.
func TestOptimalPipelineMappingQuick(t *testing.T) {
	f := func(seqs [3]uint8, totalSeed uint8) bool {
		total := int(totalSeed%29) + 3
		stages := make([]TaskCost, 3)
		for i := range stages {
			stages[i] = DataParallelCost(float64(seqs[i]%100)+1, 50, 0.1)
		}
		m, err := OptimalPipelineMapping(total, stages)
		if err != nil {
			return false
		}
		used := 0
		for _, p := range m.Nodes {
			if p < 1 {
				return false
			}
			used += p
		}
		if used > total {
			return false
		}
		// Compare with the even split.
		even := total / 3
		if even < 1 {
			even = 1
		}
		evenBottleneck := 0.0
		for i := range stages {
			if v := stages[i](even); v > evenBottleneck {
				evenBottleneck = v
			}
		}
		return m.Bottleneck <= evenBottleneck+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Exhaustive cross-check on small instances: the parametric search must
// match brute force enumeration.
func TestOptimalPipelineMappingExhaustive(t *testing.T) {
	stages := []TaskCost{
		DataParallelCost(37, 7, 0.5),
		DataParallelCost(11, 100, 0.2),
		SequentialCost(6),
	}
	for total := 3; total <= 12; total++ {
		m, err := OptimalPipelineMapping(total, stages)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for a := 1; a <= total-2; a++ {
			for b := 1; b <= total-a-1; b++ {
				c := total - a - b
				bn := math.Max(stages[0](a), math.Max(stages[1](b), stages[2](c)))
				if bn < best {
					best = bn
				}
			}
		}
		if math.Abs(m.Bottleneck-best) > 1e-9 {
			t.Errorf("total=%d: bottleneck %g, brute force %g", total, m.Bottleneck, best)
		}
	}
}
