// Package fx is an explicit Go reconstruction of the programming model the
// paper's Fx compiler provides: HPF-style distributed arrays with
// compiler-generated redistribution communication, data-parallel loops
// over owned elements, and task parallelism on node subgroups.
//
// The runtime executes real data movement and real numerics in ordinary Go
// while charging a virtual bulk-synchronous machine (package vm) for what
// each operation would have cost on the target computer (package machine),
// using exactly the per-node message/byte/copy accounting of the paper's
// Section 4 performance model (package dist).
package fx

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"airshed/internal/dist"
	"airshed/internal/resilience"
	"airshed/internal/vm"
)

// Runtime couples the virtual machine with the distributed-array layer.
type Runtime struct {
	VM *vm.Machine
	// GoParallel enables real goroutine parallelism inside ParallelNodes
	// (the numerics are independent per node, so results are identical
	// either way; this only affects host wall-clock time).
	GoParallel bool
}

// NewRuntime wraps a virtual machine.
func NewRuntime(m *vm.Machine) *Runtime {
	return &Runtime{VM: m, GoParallel: true}
}

// P returns the machine size.
func (rt *Runtime) P() int { return rt.VM.P() }

// Array is a distributed 3-D concentration array A(species, layers,
// cells). Replicated arrays share a single backing buffer across nodes
// (the replicas are bit-identical by construction, and sharing keeps
// 128-node runs addressable); partitioned arrays hold one shard per node.
type Array struct {
	rt    *Runtime
	Shape dist.Shape
	d     dist.Dist

	repl   []float64   // backing when d.Kind == Replicated
	shards [][]float64 // per-node shards otherwise

	// Redistribution scratch: the driver cycles the array through the
	// same distributions four times per time step, so retiring buffers
	// are parked per distribution and revived on the next visit, the
	// staging buffer is kept, and plans are memoised — the steady-state
	// step path allocates nothing. Every reused element is overwritten
	// by the scatter, so reuse cannot change values.
	retired   map[dist.Dist]arrayBuffers
	globalBuf []float64
	plans     map[planKey]*dist.Plan
}

// arrayBuffers is one distribution's parked backing storage.
type arrayBuffers struct {
	repl   []float64
	shards [][]float64
}

// planKey identifies a memoised redistribution plan.
type planKey struct {
	from, to dist.Dist
	nodes    int
}

// NewArray allocates a distributed array with the given distribution,
// zero-filled.
func NewArray(rt *Runtime, sh dist.Shape, d dist.Dist) (*Array, error) {
	if !sh.Valid() {
		return nil, fmt.Errorf("fx: invalid shape %v", sh)
	}
	a := &Array{rt: rt, Shape: sh, d: d}
	if err := a.alloc(d); err != nil {
		return nil, err
	}
	return a, nil
}

// NewArrayFrom allocates a distributed array initialised from a full
// global array in canonical layout (species fastest).
func NewArrayFrom(rt *Runtime, sh dist.Shape, d dist.Dist, global []float64) (*Array, error) {
	if len(global) != sh.Len() {
		return nil, fmt.Errorf("fx: global array has %d values, want %d", len(global), sh.Len())
	}
	a, err := NewArray(rt, sh, d)
	if err != nil {
		return nil, err
	}
	a.scatterGlobal(global)
	return a, nil
}

func (a *Array) alloc(d dist.Dist) error {
	p := a.rt.P()
	a.d = d
	if d.Kind == dist.Replicated {
		a.repl = make([]float64, a.Shape.Len())
		a.shards = nil
		return nil
	}
	a.repl = nil
	a.shards = make([][]float64, p)
	for n := 0; n < p; n++ {
		a.shards[n] = make([]float64, dist.OwnedCount(a.Shape, d, p, n))
	}
	return nil
}

// swapTo parks the current distribution's buffers and installs the
// target's — revived from an earlier visit when possible, allocated on
// first use. The caller must overwrite the revived storage completely
// (scatterGlobal does).
func (a *Array) swapTo(to dist.Dist) error {
	if a.retired == nil {
		a.retired = make(map[dist.Dist]arrayBuffers)
	}
	a.retired[a.d] = arrayBuffers{repl: a.repl, shards: a.shards}
	if bufs, ok := a.retired[to]; ok {
		delete(a.retired, to)
		a.d = to
		a.repl = bufs.repl
		a.shards = bufs.shards
		return nil
	}
	return a.alloc(to)
}

// Dist returns the current distribution.
func (a *Array) Dist() dist.Dist { return a.d }

// localOffset maps a global element (s, l, c) to the offset inside the
// owning node's shard. The caller must pass the owning node.
func (a *Array) localOffset(node, s, l, c int) int {
	sh := a.Shape
	switch a.d.Kind {
	case dist.Replicated:
		return sh.Index(s, l, c)
	case dist.Block:
		switch a.d.Dim {
		case dist.AxisCells:
			lo := dist.BlockOwner(sh.Cells, a.rt.P(), node).Lo
			return s + sh.Species*(l+sh.Layers*(c-lo))
		case dist.AxisLayers:
			iv := dist.BlockOwner(sh.Layers, a.rt.P(), node)
			return s + sh.Species*((l-iv.Lo)+iv.Len()*c)
		default: // species axis
			iv := dist.BlockOwner(sh.Species, a.rt.P(), node)
			return (s - iv.Lo) + iv.Len()*(l+sh.Layers*c)
		}
	case dist.Cyclic:
		p := a.rt.P()
		switch a.d.Dim {
		case dist.AxisCells:
			return s + sh.Species*(l+sh.Layers*((c-node)/p))
		case dist.AxisLayers:
			nloc := dist.CyclicCount(sh.Layers, p, node)
			return s + sh.Species*((l-node)/p+nloc*c)
		default:
			nloc := dist.CyclicCount(sh.Species, p, node)
			return (s-node)/p + nloc*(l+sh.Layers*c)
		}
	default:
		panic("fx: bad distribution kind")
	}
}

// owner returns the node owning element (s, l, c); for replicated arrays
// it returns 0 (any node).
func (a *Array) owner(s, l, c int) int {
	p := a.rt.P()
	switch a.d.Kind {
	case dist.Replicated:
		return 0
	case dist.Block:
		switch a.d.Dim {
		case dist.AxisCells:
			return dist.BlockOwnerOf(a.Shape.Cells, p, c)
		case dist.AxisLayers:
			return dist.BlockOwnerOf(a.Shape.Layers, p, l)
		default:
			return dist.BlockOwnerOf(a.Shape.Species, p, s)
		}
	case dist.Cyclic:
		switch a.d.Dim {
		case dist.AxisCells:
			return dist.CyclicOwnerOf(p, c)
		case dist.AxisLayers:
			return dist.CyclicOwnerOf(p, l)
		default:
			return dist.CyclicOwnerOf(p, s)
		}
	default:
		panic("fx: bad distribution kind")
	}
}

// storage returns the buffer holding element data for a node.
func (a *Array) storage(node int) []float64 {
	if a.d.Kind == dist.Replicated {
		return a.repl
	}
	return a.shards[node]
}

// At reads element (s, l, c) from its owner's shard.
func (a *Array) At(s, l, c int) float64 {
	n := a.owner(s, l, c)
	return a.storage(n)[a.localOffset(n, s, l, c)]
}

// Set writes element (s, l, c) into its owner's shard (and, for replicated
// arrays, the shared replica).
func (a *Array) Set(s, l, c int, v float64) {
	n := a.owner(s, l, c)
	a.storage(n)[a.localOffset(n, s, l, c)] = v
}

// scatterGlobal loads a full canonical array into the current shards.
// The Block distributions take bulk-copy fast paths: a DChem shard is a
// contiguous span of the canonical array, and a DTrans shard is one
// contiguous species-x-layers run per cell.
func (a *Array) scatterGlobal(global []float64) {
	sh := a.Shape
	p := a.rt.P()
	switch {
	case a.d.Kind == dist.Replicated:
		copy(a.repl, global)
	case a.d.Kind == dist.Block && a.d.Dim == dist.AxisCells:
		blk := sh.Species * sh.Layers
		for n := 0; n < p; n++ {
			iv := dist.BlockOwner(sh.Cells, p, n)
			copy(a.shards[n], global[blk*iv.Lo:blk*iv.Hi])
		}
	case a.d.Kind == dist.Block && a.d.Dim == dist.AxisLayers:
		for n := 0; n < p; n++ {
			iv := dist.BlockOwner(sh.Layers, p, n)
			run := sh.Species * iv.Len()
			shard := a.shards[n]
			for c := 0; c < sh.Cells; c++ {
				src := sh.Species * (iv.Lo + sh.Layers*c)
				copy(shard[run*c:run*(c+1)], global[src:src+run])
			}
		}
	default:
		for c := 0; c < sh.Cells; c++ {
			for l := 0; l < sh.Layers; l++ {
				for s := 0; s < sh.Species; s++ {
					n := a.owner(s, l, c)
					a.shards[n][a.localOffset(n, s, l, c)] = global[sh.Index(s, l, c)]
				}
			}
		}
	}
}

// gatherInto assembles the full canonical array into out (length
// Shape.Len()), taking the same bulk-copy fast paths as scatterGlobal.
func (a *Array) gatherInto(out []float64) {
	sh := a.Shape
	p := a.rt.P()
	switch {
	case a.d.Kind == dist.Replicated:
		copy(out, a.repl)
	case a.d.Kind == dist.Block && a.d.Dim == dist.AxisCells:
		blk := sh.Species * sh.Layers
		for n := 0; n < p; n++ {
			iv := dist.BlockOwner(sh.Cells, p, n)
			copy(out[blk*iv.Lo:blk*iv.Hi], a.shards[n])
		}
	case a.d.Kind == dist.Block && a.d.Dim == dist.AxisLayers:
		for n := 0; n < p; n++ {
			iv := dist.BlockOwner(sh.Layers, p, n)
			run := sh.Species * iv.Len()
			shard := a.shards[n]
			for c := 0; c < sh.Cells; c++ {
				dst := sh.Species * (iv.Lo + sh.Layers*c)
				copy(out[dst:dst+run], shard[run*c:run*(c+1)])
			}
		}
	default:
		for c := 0; c < sh.Cells; c++ {
			for l := 0; l < sh.Layers; l++ {
				for s := 0; s < sh.Species; s++ {
					n := a.owner(s, l, c)
					out[sh.Index(s, l, c)] = a.shards[n][a.localOffset(n, s, l, c)]
				}
			}
		}
	}
}

// Gather assembles the full canonical array (an inspection helper; it does
// not charge communication).
func (a *Array) Gather() []float64 {
	out := make([]float64, a.Shape.Len())
	a.gatherInto(out)
	return out
}

// Redistribute changes the distribution, physically moving the data and
// charging every node its share of the communication plan (the paper's
// Ct = L*m + G*b + H*c), followed by a barrier. It returns the plan for
// inspection.
func (a *Array) Redistribute(to dist.Dist) (*dist.Plan, error) {
	return a.RedistributeOn(a.rt.VM.AllNodes(), to)
}

// RedistributeOn is Redistribute restricted to a node subgroup (task
// parallelism): costs are charged to the subgroup's nodes and the barrier
// covers only the subgroup. The distribution geometry is computed over the
// subgroup size, mirroring Fx's distribution onto node subsets.
//
// Note: the array must be distributed over exactly this subgroup; the
// top-level Airshed driver uses full-machine arrays, while the pipelined
// driver keeps its stage arrays on stage subgroups throughout.
func (a *Array) RedistributeOn(nodes []int, to dist.Dist) (*dist.Plan, error) {
	prof := a.rt.VM.Profile()
	key := planKey{from: a.d, to: to, nodes: len(nodes)}
	plan, ok := a.plans[key]
	if !ok {
		var err error
		plan, err = dist.NewPlan(a.Shape, a.d, to, len(nodes), prof.WordSize)
		if err != nil {
			return nil, err
		}
		if a.plans == nil {
			a.plans = make(map[planKey]*dist.Plan)
		}
		a.plans[key] = plan
	}
	// Physical move: gather via the old distribution into the staging
	// buffer, swap to the target distribution's parked storage, load.
	// (The virtual cost is the plan's; the host-side implementation is
	// free to be simple.)
	if a.d != to {
		if a.globalBuf == nil {
			a.globalBuf = make([]float64, a.Shape.Len())
		}
		a.gatherInto(a.globalBuf)
		if err := a.swapTo(to); err != nil {
			return nil, err
		}
		a.scatterGlobal(a.globalBuf)
	}
	for i, n := range nodes {
		cost := plan.Traffic[i].Cost(prof)
		a.rt.VM.ChargeSeconds(n, vm.CatComm, cost)
	}
	a.rt.VM.BarrierGroup(nodes)
	return plan, nil
}

// OwnedCells returns the cell interval node owns (the array must be
// DChem-style: Block over cells).
func (a *Array) OwnedCells(node int) (dist.Interval, error) {
	if a.d.Kind != dist.Block || a.d.Dim != dist.AxisCells {
		return dist.Interval{}, fmt.Errorf("fx: OwnedCells on %v", a.d)
	}
	return dist.BlockOwner(a.Shape.Cells, a.rt.P(), node), nil
}

// OwnedLayers returns the layer interval node owns (the array must be
// DTrans-style: Block over layers).
func (a *Array) OwnedLayers(node int) (dist.Interval, error) {
	if a.d.Kind != dist.Block || a.d.Dim != dist.AxisLayers {
		return dist.Interval{}, fmt.Errorf("fx: OwnedLayers on %v", a.d)
	}
	return dist.BlockOwner(a.Shape.Layers, a.rt.P(), node), nil
}

// CellBlock returns the contiguous (species x layers) block of one owned
// cell in a DChem-distributed array: exactly the column the chemistry
// operator consumes. Mutations write through to the shard.
func (a *Array) CellBlock(node, c int) ([]float64, error) {
	iv, err := a.OwnedCells(node)
	if err != nil {
		return nil, err
	}
	if !iv.Contains(c) {
		return nil, fmt.Errorf("fx: node %d does not own cell %d", node, c)
	}
	sz := a.Shape.Species * a.Shape.Layers
	off := a.localOffset(node, 0, 0, c)
	return a.shards[node][off : off+sz], nil
}

// GatherLayerField copies the (species s, layer l) horizontal field into
// buf (length cells) from a DTrans-distributed array owned by node.
func (a *Array) GatherLayerField(node, s, l int, buf []float64) error {
	iv, err := a.OwnedLayers(node)
	if err != nil {
		return err
	}
	if !iv.Contains(l) {
		return fmt.Errorf("fx: node %d does not own layer %d", node, l)
	}
	if len(buf) != a.Shape.Cells {
		return fmt.Errorf("fx: buffer has %d cells, want %d", len(buf), a.Shape.Cells)
	}
	sh := a.Shape
	nloc := iv.Len()
	shard := a.shards[node]
	base := s + sh.Species*(l-iv.Lo)
	stride := sh.Species * nloc
	for c := 0; c < sh.Cells; c++ {
		buf[c] = shard[base+stride*c]
	}
	return nil
}

// ScatterLayerField writes buf back into the (s, l) field of a
// DTrans-distributed array owned by node.
func (a *Array) ScatterLayerField(node, s, l int, buf []float64) error {
	iv, err := a.OwnedLayers(node)
	if err != nil {
		return err
	}
	if !iv.Contains(l) {
		return fmt.Errorf("fx: node %d does not own layer %d", node, l)
	}
	if len(buf) != a.Shape.Cells {
		return fmt.Errorf("fx: buffer has %d cells, want %d", len(buf), a.Shape.Cells)
	}
	sh := a.Shape
	nloc := iv.Len()
	shard := a.shards[node]
	base := s + sh.Species*(l-iv.Lo)
	stride := sh.Species * nloc
	for c := 0; c < sh.Cells; c++ {
		shard[base+stride*c] = buf[c]
	}
	return nil
}

// Replica returns the shared backing buffer of a replicated array (the
// canonical layout). It errors for partitioned arrays.
func (a *Array) Replica() ([]float64, error) {
	if a.d.Kind != dist.Replicated {
		return nil, fmt.Errorf("fx: Replica on %v", a.d)
	}
	return a.repl, nil
}

// ParallelNodes runs body once per machine node (concurrently when
// GoParallel is set), then charges each node the work units the body
// returned under the given category, and barriers. The bodies must touch
// disjoint data (they own disjoint shard regions), so results are
// independent of scheduling.
func (rt *Runtime) ParallelNodes(cat vm.Category, body func(node int) (float64, error)) error {
	return rt.ParallelGroup(rt.VM.AllNodes(), cat, body)
}

// ParallelGroup is ParallelNodes restricted to a node subgroup.
func (rt *Runtime) ParallelGroup(nodes []int, cat vm.Category, body func(node int) (float64, error)) error {
	flops := make([]float64, len(nodes))
	errs := make([]error, len(nodes))
	// A panicking node body becomes that node's deterministic error slot
	// instead of killing the process (parallel path) or unwinding through
	// the scheduler (serial path).
	run := func(i, n int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = resilience.NewPanicError(r, debug.Stack())
			}
		}()
		flops[i], errs[i] = body(n)
	}
	if rt.GoParallel {
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for i, n := range nodes {
			// Acquire before spawning: with 128 virtual nodes the old
			// spawn-then-acquire order created 128 live goroutines no
			// matter how many cores the host has.
			sem <- struct{}{}
			wg.Add(1)
			go func(i, n int) {
				defer wg.Done()
				defer func() { <-sem }()
				run(i, n)
			}(i, n)
		}
		wg.Wait()
	} else {
		for i, n := range nodes {
			run(i, n)
		}
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("fx: node %d: %w", nodes[i], err)
		}
	}
	for i, n := range nodes {
		rt.VM.ChargeCompute(n, cat, flops[i])
	}
	rt.VM.BarrierGroup(nodes)
	return nil
}

// Group is a node subgroup used for task parallelism.
type Group []int

// SplitGroups partitions p nodes into groups of the given sizes; sizes
// must sum to at most p, and the remainder goes to the last group when
// grow is true.
func SplitGroups(p int, sizes ...int) ([]Group, error) {
	total := 0
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("fx: group sizes must be positive, got %v", sizes)
		}
		total += s
	}
	if total > p {
		return nil, fmt.Errorf("fx: group sizes %v exceed %d nodes", sizes, p)
	}
	groups := make([]Group, len(sizes))
	next := 0
	for gi, s := range sizes {
		g := make(Group, s)
		for i := 0; i < s; i++ {
			g[i] = next
			next++
		}
		groups[gi] = g
	}
	// Distribute any remaining nodes to the last group.
	for next < p {
		groups[len(groups)-1] = append(groups[len(groups)-1], next)
		next++
	}
	return groups, nil
}
