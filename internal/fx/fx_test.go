package fx

import (
	"math"
	"testing"
	"testing/quick"

	"airshed/internal/dist"
	"airshed/internal/machine"
	"airshed/internal/vm"
)

func newRT(t *testing.T, p int) *Runtime {
	t.Helper()
	m, err := vm.New(machine.CrayT3E(), p)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(m)
	rt.GoParallel = false // deterministic charge ordering in tests
	return rt
}

func seqShape() dist.Shape { return dist.Shape{Species: 7, Layers: 5, Cells: 30} }

// fillPattern writes a recognisable value into each element.
func pattern(sh dist.Shape) []float64 {
	g := make([]float64, sh.Len())
	for c := 0; c < sh.Cells; c++ {
		for l := 0; l < sh.Layers; l++ {
			for s := 0; s < sh.Species; s++ {
				g[sh.Index(s, l, c)] = float64(s) + 100*float64(l) + 10000*float64(c)
			}
		}
	}
	return g
}

func TestNewArrayValidation(t *testing.T) {
	rt := newRT(t, 4)
	if _, err := NewArray(rt, dist.Shape{}, dist.DRepl); err == nil {
		t.Error("invalid shape accepted")
	}
	if _, err := NewArrayFrom(rt, seqShape(), dist.DRepl, make([]float64, 3)); err == nil {
		t.Error("short global accepted")
	}
}

func TestArrayRoundTripAllDists(t *testing.T) {
	sh := seqShape()
	global := pattern(sh)
	dists := []dist.Dist{
		dist.DRepl, dist.DTrans, dist.DChem,
		{Kind: dist.Block, Dim: dist.AxisSpecies},
		{Kind: dist.Cyclic, Dim: dist.AxisCells},
		{Kind: dist.Cyclic, Dim: dist.AxisLayers},
		{Kind: dist.Cyclic, Dim: dist.AxisSpecies},
	}
	for _, d := range dists {
		for _, p := range []int{1, 2, 3, 5, 8, 16} {
			rt := newRT(t, p)
			a, err := NewArrayFrom(rt, sh, d, global)
			if err != nil {
				t.Fatalf("%v p=%d: %v", d, p, err)
			}
			got := a.Gather()
			for i := range global {
				if got[i] != global[i] {
					t.Fatalf("%v p=%d: element %d = %g, want %g", d, p, i, got[i], global[i])
				}
			}
			// Element access.
			if v := a.At(3, 2, 7); v != global[sh.Index(3, 2, 7)] {
				t.Fatalf("%v p=%d: At = %g", d, p, v)
			}
			a.Set(3, 2, 7, -1)
			if v := a.At(3, 2, 7); v != -1 {
				t.Fatalf("%v p=%d: Set/At = %g", d, p, v)
			}
		}
	}
}

// Redistribution must preserve array contents exactly — the paper's
// compiler-generated communication moves data without transforming it.
func TestRedistributePreservesData(t *testing.T) {
	sh := seqShape()
	global := pattern(sh)
	cycle := []dist.Dist{dist.DRepl, dist.DTrans, dist.DChem, dist.DRepl, dist.DChem, dist.DTrans}
	for _, p := range []int{1, 2, 4, 5, 8, 16} {
		rt := newRT(t, p)
		a, err := NewArrayFrom(rt, sh, dist.DRepl, global)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range cycle {
			if _, err := a.Redistribute(d); err != nil {
				t.Fatalf("p=%d -> %v: %v", p, d, err)
			}
			got := a.Gather()
			for i := range global {
				if got[i] != global[i] {
					t.Fatalf("p=%d after -> %v: element %d corrupted", p, d, i)
				}
			}
		}
	}
}

// The virtual cost of a redistribution must equal the plan's max node cost
// (bulk-synchronous law).
func TestRedistributeChargesPlanCost(t *testing.T) {
	sh := dist.Shape{Species: 35, Layers: 5, Cells: 700}
	for _, p := range []int{4, 8, 16} {
		rt := newRT(t, p)
		a, err := NewArray(rt, sh, dist.DChem)
		if err != nil {
			t.Fatal(err)
		}
		before := rt.VM.Elapsed()
		plan, err := a.Redistribute(dist.DRepl)
		if err != nil {
			t.Fatal(err)
		}
		elapsed := rt.VM.Elapsed() - before
		want := plan.MaxCost(rt.VM.Profile())
		if math.Abs(elapsed-want) > 1e-12 {
			t.Errorf("p=%d: charged %g, plan max cost %g", p, elapsed, want)
		}
		if got := rt.VM.CategorySeconds(vm.CatComm); math.Abs(got-want) > 1e-12 {
			t.Errorf("p=%d: comm category %g, want %g", p, got, want)
		}
	}
}

func TestOwnedViews(t *testing.T) {
	sh := seqShape()
	rt := newRT(t, 4)
	a, err := NewArrayFrom(rt, sh, dist.DChem, pattern(sh))
	if err != nil {
		t.Fatal(err)
	}
	// OwnedCells partitions the cells.
	covered := 0
	for n := 0; n < 4; n++ {
		iv, err := a.OwnedCells(n)
		if err != nil {
			t.Fatal(err)
		}
		covered += iv.Len()
	}
	if covered != sh.Cells {
		t.Errorf("owned cells cover %d of %d", covered, sh.Cells)
	}
	if _, err := a.OwnedLayers(0); err == nil {
		t.Error("OwnedLayers on DChem accepted")
	}

	// CellBlock exposes the (species, layers) column.
	iv, _ := a.OwnedCells(1)
	c := iv.Lo
	block, err := a.CellBlock(1, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(block) != sh.Species*sh.Layers {
		t.Fatalf("block length %d", len(block))
	}
	for l := 0; l < sh.Layers; l++ {
		for s := 0; s < sh.Species; s++ {
			want := a.At(s, l, c)
			if block[s+sh.Species*l] != want {
				t.Fatalf("block[%d,%d] = %g, want %g", s, l, block[s+sh.Species*l], want)
			}
		}
	}
	// Mutation writes through.
	block[0] = -42
	if a.At(0, 0, c) != -42 {
		t.Error("CellBlock is not a view")
	}
	if _, err := a.CellBlock(1, sh.Cells+5); err == nil {
		t.Error("unowned cell accepted")
	}
}

func TestLayerFieldGatherScatter(t *testing.T) {
	sh := seqShape()
	rt := newRT(t, 3)
	a, err := NewArrayFrom(rt, sh, dist.DTrans, pattern(sh))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, sh.Cells)
	for n := 0; n < 3; n++ {
		iv, err := a.OwnedLayers(n)
		if err != nil {
			t.Fatal(err)
		}
		for l := iv.Lo; l < iv.Hi; l++ {
			for s := 0; s < sh.Species; s++ {
				if err := a.GatherLayerField(n, s, l, buf); err != nil {
					t.Fatal(err)
				}
				for c := 0; c < sh.Cells; c++ {
					if buf[c] != a.At(s, l, c) {
						t.Fatalf("gather mismatch at s=%d l=%d c=%d", s, l, c)
					}
				}
				// Scatter a transformed field and verify.
				for c := range buf {
					buf[c] += 0.5
				}
				if err := a.ScatterLayerField(n, s, l, buf); err != nil {
					t.Fatal(err)
				}
				if a.At(s, 1*0+l, 0) != buf[0] {
					t.Fatal("scatter did not write through")
				}
			}
		}
	}
	// Errors.
	if err := a.GatherLayerField(0, 0, sh.Layers+1, buf); err == nil {
		t.Error("unowned layer accepted")
	}
	if err := a.GatherLayerField(0, 0, 0, buf[:3]); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestReplica(t *testing.T) {
	sh := seqShape()
	rt := newRT(t, 2)
	a, err := NewArrayFrom(rt, sh, dist.DRepl, pattern(sh))
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.Replica()
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != sh.Len() {
		t.Fatalf("replica length %d", len(r))
	}
	b, _ := NewArray(rt, sh, dist.DChem)
	if _, err := b.Replica(); err == nil {
		t.Error("Replica on partitioned array accepted")
	}
}

func TestParallelNodesCharges(t *testing.T) {
	rt := newRT(t, 4)
	err := rt.ParallelNodes(vm.CatChemistry, func(node int) (float64, error) {
		return float64(node+1) * 1e6, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Barrier takes the max: node 3's 4e6 flops.
	want := rt.VM.Profile().ComputeTime(4e6)
	if got := rt.VM.Elapsed(); math.Abs(got-want) > 1e-15 {
		t.Errorf("elapsed %g, want %g", got, want)
	}
}

func TestParallelNodesConcurrent(t *testing.T) {
	m, err := vm.New(machine.CrayT3E(), 8)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(m) // GoParallel on
	results := make([]float64, 8)
	err = rt.ParallelNodes(vm.CatTransport, func(node int) (float64, error) {
		results[node] = float64(node) // disjoint writes
		return 1e6, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != float64(i) {
			t.Errorf("node %d body did not run", i)
		}
	}
}

func TestParallelNodesError(t *testing.T) {
	rt := newRT(t, 4)
	err := rt.ParallelNodes(vm.CatOther, func(node int) (float64, error) {
		if node == 2 {
			return 0, errTest
		}
		return 0, nil
	})
	if err == nil {
		t.Error("body error swallowed")
	}
}

var errTest = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "test error" }

func TestSplitGroups(t *testing.T) {
	groups, err := SplitGroups(10, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("got %d groups", len(groups))
	}
	if len(groups[0]) != 2 {
		t.Errorf("group 0 size %d", len(groups[0]))
	}
	// Remainder (5 nodes) joins the last group.
	if len(groups[1]) != 8 {
		t.Errorf("group 1 size %d, want 8 (3 + remainder)", len(groups[1]))
	}
	// Disjoint coverage.
	seen := map[int]bool{}
	for _, g := range groups {
		for _, n := range g {
			if seen[n] {
				t.Fatalf("node %d in two groups", n)
			}
			seen[n] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("groups cover %d of 10 nodes", len(seen))
	}
	if _, err := SplitGroups(4, 3, 3); err == nil {
		t.Error("oversized split accepted")
	}
	if _, err := SplitGroups(4, 0); err == nil {
		t.Error("zero group size accepted")
	}
}

// Property: redistribution through any sequence of the Airshed cycle
// preserves data for random shapes and node counts.
func TestRedistributeQuick(t *testing.T) {
	f := func(sp, la, ce, pp uint8) bool {
		sh := dist.Shape{Species: int(sp%6) + 1, Layers: int(la%5) + 1, Cells: int(ce%20) + 1}
		p := int(pp%12) + 1
		m, err := vm.New(machine.CrayT3E(), p)
		if err != nil {
			return false
		}
		rt := NewRuntime(m)
		rt.GoParallel = false
		global := pattern(sh)
		a, err := NewArrayFrom(rt, sh, dist.DRepl, global)
		if err != nil {
			return false
		}
		for _, d := range []dist.Dist{dist.DTrans, dist.DChem, dist.DRepl} {
			if _, err := a.Redistribute(d); err != nil {
				return false
			}
		}
		got := a.Gather()
		for i := range global {
			if got[i] != global[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
