package fx

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the processor-allocation machinery the paper
// credits to the Fx project's task-parallelism work (Subhlok & Vondran,
// "Optimal mapping of sequences of data parallel tasks" and "Optimal
// latency-throughput tradeoffs for data parallel pipelines", the paper's
// references [26, 27]): given a pipeline of data-parallel stages with
// known cost functions, divide P nodes among the stages.
//
// The Airshed drivers use it to size the input / compute / output (/
// PopExp) subgroups of the Section 5 and Section 6 pipelines instead of
// fixed heuristics; the paper notes exactly this: "With the knowledge of
// computation and communication characteristics of a foreign module, the
// techniques used in Fx to manage processor allocation among tasks can be
// extended to foreign modules."

// TaskCost reports a stage's per-item processing time on p nodes. Cost
// functions must be non-increasing in p (more nodes never slow a stage);
// OptimalPipelineMapping validates this on the points it probes.
type TaskCost func(p int) float64

// Mapping is a processor allocation for a pipeline.
type Mapping struct {
	// Nodes[i] is the node count of stage i.
	Nodes []int
	// Bottleneck is the resulting pipeline period: the maximum stage
	// time, which bounds steady-state throughput.
	Bottleneck float64
	// Latency is the sum of stage times: the time one item needs to
	// traverse the pipeline.
	Latency float64
}

// OptimalPipelineMapping divides total nodes among the pipeline stages to
// minimise the bottleneck stage time (throughput-optimal mapping). Every
// stage receives at least one node. Among allocations achieving the
// optimal bottleneck it returns one using the fewest nodes per stage
// (which also minimises latency among minimal allocations); leftover
// nodes are assigned to the bottleneck stage.
//
// The algorithm is the classic parametric search: candidate bottleneck
// values are exactly the stage costs at feasible node counts; for a
// candidate T, the minimal allocation gives each stage the smallest p
// with cost(p) <= T; the smallest feasible T wins. Complexity
// O(k * P * log(k * P)) for k stages.
func OptimalPipelineMapping(total int, costs []TaskCost) (*Mapping, error) {
	k := len(costs)
	if k == 0 {
		return nil, fmt.Errorf("fx: no pipeline stages")
	}
	if total < k {
		return nil, fmt.Errorf("fx: %d nodes cannot host %d pipeline stages", total, k)
	}
	// Tabulate stage costs for p = 1..total-k+1 (a stage can never get
	// more than that) and validate monotonicity.
	maxP := total - k + 1
	table := make([][]float64, k)
	var candidates []float64
	for i, c := range costs {
		table[i] = make([]float64, maxP+1)
		prev := math.Inf(1)
		for p := 1; p <= maxP; p++ {
			v := c(p)
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("fx: stage %d cost at p=%d is %g", i, p, v)
			}
			if v > prev*(1+1e-12) {
				return nil, fmt.Errorf("fx: stage %d cost increases from %g to %g at p=%d (must be non-increasing)",
					i, prev, v, p)
			}
			table[i][p] = v
			prev = v
			candidates = append(candidates, v)
		}
	}
	sort.Float64s(candidates)
	candidates = dedupFloats(candidates)

	// minNodesFor returns the minimal total allocation achieving
	// bottleneck <= T, or nil if infeasible.
	minNodesFor := func(T float64) []int {
		alloc := make([]int, k)
		used := 0
		for i := 0; i < k; i++ {
			p := 1
			for p <= maxP && table[i][p] > T {
				p++
			}
			if p > maxP {
				return nil
			}
			alloc[i] = p
			used += p
			if used > total {
				return nil
			}
		}
		return alloc
	}

	// Binary search the smallest feasible candidate.
	lo, hi := 0, len(candidates)-1
	if minNodesFor(candidates[hi]) == nil {
		return nil, fmt.Errorf("fx: no feasible mapping of %d stages onto %d nodes", k, total)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if minNodesFor(candidates[mid]) != nil {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	alloc := minNodesFor(candidates[lo])

	// Hand leftover nodes to the current bottleneck stage while it
	// improves anything.
	used := 0
	for _, p := range alloc {
		used += p
	}
	for used < total {
		worst, worstCost := -1, -1.0
		for i, p := range alloc {
			if p < maxP && table[i][p] > worstCost {
				worst, worstCost = i, table[i][p]
			}
		}
		if worst < 0 || table[worst][alloc[worst]+1] >= worstCost {
			break // no stage improves with one more node
		}
		alloc[worst]++
		used++
	}

	m := &Mapping{Nodes: alloc}
	for i, p := range alloc {
		t := table[i][p]
		if t > m.Bottleneck {
			m.Bottleneck = t
		}
		m.Latency += t
	}
	return m, nil
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// DataParallelCost builds the paper's Section 4.1 cost function for a
// data-parallel stage: seq / min(parallelism, p) with the ceil correction
// for block partitions, plus a fixed per-item overhead (communication,
// startup) that does not shrink with p.
func DataParallelCost(seq float64, parallelism int, fixed float64) TaskCost {
	return func(p int) float64 {
		if parallelism <= 1 {
			return seq + fixed
		}
		m := p
		if parallelism < m {
			m = parallelism
		}
		ceil := (parallelism + m - 1) / m
		return seq*float64(ceil)/float64(parallelism) + fixed
	}
}

// SequentialCost builds the cost function of an inherently sequential
// stage (e.g. the I/O processing tasks): constant in p.
func SequentialCost(t float64) TaskCost {
	return func(int) float64 { return t }
}
