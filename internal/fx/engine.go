package fx

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"airshed/internal/resilience"
)

// Engine is the host execution engine: a fixed pool of worker goroutines
// that executes contiguous work chunks, sized by the physical host
// (GOMAXPROCS) rather than by the virtual node decomposition. The paper's
// science decomposition (layers to nodes for transport, cell columns to
// nodes for chemistry) stays what it is — the engine only decides which
// host core executes which span of it, the kernel/execution-mapping split
// the ESCAPE dwarfs report argues for.
//
// Determinism contract: Run gives every chunk a fixed [lo, hi) span of
// the item index space and callers write per-item results into fixed
// slots of a shared record array. Reductions are then performed by the
// caller in index order, so results are bit-identical for any worker
// count, any chunk size, and any execution interleaving — including the
// fully serial path.
//
// An Engine is safe for concurrent use: multiple simulations may issue
// Run calls against one shared pool, and each chunk learns the pool
// worker index executing it so callers can maintain per-worker scratch
// (operators, field buffers) without locking. A chunk body must never
// call Run on its own engine (the nested call could wait on workers that
// are all waiting on it).
type Engine struct {
	workers int
	queue   chan chunk
	wg      sync.WaitGroup

	// Gauges and counters for /metrics.
	active atomic.Int64 // chunks executing right now
	queued atomic.Int64 // chunks waiting in the queue
	chunks atomic.Int64 // chunks executed since creation
	runs   atomic.Int64 // Run calls completed since creation
	panics atomic.Int64 // chunk panics contained since creation
}

// chunk is one scheduled span of a Run call.
type chunk struct {
	lo, hi int
	slot   int
	fn     func(worker, lo, hi int) error
	state  *runState
}

// runState collects one Run call's outcome: per-chunk error slots (fixed
// by chunk index, so the reported error is deterministic) and the
// completion barrier.
type runState struct {
	errs []error
	wg   sync.WaitGroup
}

// chunksPerWorker oversubscribes the chunk count so imbalanced spans
// (daytime chemistry columns cost far more than night ones) rebalance
// across the pool instead of stalling the phase on its slowest span.
const chunksPerWorker = 4

// NewEngine starts an engine with the given pool size; workers <= 0
// means GOMAXPROCS. Close releases the pool.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers: workers,
		queue:   make(chan chunk, 4*workers),
	}
	e.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go e.worker(w)
	}
	return e
}

// worker executes chunks until the queue closes. w is the stable pool
// index handed to every chunk body this goroutine runs.
func (e *Engine) worker(w int) {
	defer e.wg.Done()
	for c := range e.queue {
		e.queued.Add(-1)
		e.active.Add(1)
		if err := e.runChunk(w, c); err != nil {
			c.state.errs[c.slot] = err
		}
		e.active.Add(-1)
		e.chunks.Add(1)
		c.state.wg.Done()
	}
}

// runChunk executes one chunk body with panic containment: a panicking
// kernel becomes a deterministic per-slot PanicError (the job fails, the
// pool survives) instead of killing the process. The recover lives here,
// inside the per-chunk frame, so the completion barrier above always
// fires.
func (e *Engine) runChunk(w int, c chunk) (err error) {
	defer func() {
		if r := recover(); r != nil {
			e.panics.Add(1)
			err = resilience.NewPanicError(r, debug.Stack())
		}
	}()
	if err := resilience.Fire(resilience.PointFxChunk); err != nil {
		return err
	}
	return c.fn(w, c.lo, c.hi)
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Run splits the item space [0, n) into balanced contiguous spans and
// executes fn once per span on the pool, blocking until every span has
// finished. fn receives the executing pool worker's index (for
// per-worker scratch) and its span. The first error in chunk-index order
// is returned, annotated with its span.
func (e *Engine) Run(n int, fn func(worker, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	nch := e.workers * chunksPerWorker
	if nch > n {
		nch = n
	}
	st := &runState{errs: make([]error, nch)}
	st.wg.Add(nch)
	for i := 0; i < nch; i++ {
		e.queued.Add(1)
		e.queue <- chunk{
			lo:    i * n / nch,
			hi:    (i + 1) * n / nch,
			slot:  i,
			fn:    fn,
			state: st,
		}
	}
	st.wg.Wait()
	e.runs.Add(1)
	for i, err := range st.errs {
		if err != nil {
			return fmt.Errorf("fx: chunk [%d,%d): %w", i*n/nch, (i+1)*n/nch, err)
		}
	}
	return nil
}

// Close shuts the pool down after in-flight chunks finish. Run must not
// be called after (or concurrently with) Close.
func (e *Engine) Close() {
	close(e.queue)
	e.wg.Wait()
}

// EngineStats is a point-in-time snapshot of the engine gauges.
type EngineStats struct {
	// Workers is the fixed pool size.
	Workers int
	// Active is the number of chunks executing right now.
	Active int
	// Queued is the chunk queue depth (scheduled, not yet picked up).
	Queued int
	// Chunks counts chunks executed since the engine started.
	Chunks int64
	// Runs counts completed Run calls (phases) since the engine started.
	Runs int64
	// Panics counts chunk panics contained since the engine started.
	Panics int64
}

// Stats snapshots the gauges; safe to call concurrently with Run.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Workers: e.workers,
		Active:  int(e.active.Load()),
		Queued:  int(e.queued.Load()),
		Chunks:  e.chunks.Load(),
		Runs:    e.runs.Load(),
		Panics:  e.panics.Load(),
	}
}

var (
	sharedOnce   sync.Once
	sharedEngine *Engine
)

// SharedEngine returns the process-wide engine, created on first use
// with GOMAXPROCS workers and never closed. Every simulation that does
// not ask for a dedicated pool schedules onto it, so a daemon running
// several concurrent jobs keeps total host parallelism at the machine
// size instead of jobs × virtual nodes.
func SharedEngine() *Engine {
	sharedOnce.Do(func() {
		sharedEngine = NewEngine(0)
	})
	return sharedEngine
}
