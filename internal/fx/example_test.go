package fx_test

import (
	"fmt"

	"airshed/internal/fx"
)

// Sizing the Airshed Section 5 pipeline on 32 nodes: the sequential I/O
// stages get one node each and the data-parallel computation the rest —
// the allocation the Fx task-mapping machinery (the paper's references
// [26, 27]) derives automatically.
func ExampleOptimalPipelineMapping() {
	stages := []fx.TaskCost{
		fx.SequentialCost(9),                 // inputhour + pretrans
		fx.DataParallelCost(1200, 700, 0.05), // transport+chemistry, 700-way parallel
		fx.SequentialCost(7),                 // outputhour
	}
	m, err := fx.OptimalPipelineMapping(32, stages)
	if err != nil {
		panic(err)
	}
	fmt.Printf("allocation: input=%d compute=%d output=%d\n", m.Nodes[0], m.Nodes[1], m.Nodes[2])
	fmt.Printf("pipeline period: %.2f s per hour\n", m.Bottleneck)
	// Output:
	// allocation: input=1 compute=30 output=1
	// pipeline period: 41.19 s per hour
}

// A stage whose parallelism is bounded (the 2-D transport operator's
// 5-layer limit) stops receiving nodes once they become useless.
func ExampleDataParallelCost() {
	transport := fx.DataParallelCost(100, 5, 0)
	for _, p := range []int{1, 4, 5, 64} {
		fmt.Printf("p=%2d: %.0f s\n", p, transport(p))
	}
	// Output:
	// p= 1: 100 s
	// p= 4: 40 s
	// p= 5: 20 s
	// p=64: 20 s
}
