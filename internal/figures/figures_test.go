package figures

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"airshed/internal/core"
	"airshed/internal/datasets"
	"airshed/internal/machine"
)

// testContext builds a Context from a quick Mini run (standing in for the
// LA and NE traces; every figure builder only needs a valid trace).
func testContext(t *testing.T) *Context {
	t.Helper()
	ds, err := datasets.Mini()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.Config{
		Dataset: ds, Machine: machine.CrayT3E(), Nodes: 1, Hours: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Context{LA: res.Trace, NE: res.Trace, Hours: 2}
}

func TestAllFiguresBuildAndRender(t *testing.T) {
	ctx := testContext(t)
	figs, err := ctx.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) < 8 {
		t.Fatalf("only %d figures", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if f.ID == "" || f.Caption == "" {
			t.Errorf("figure missing identity: %+v", f)
		}
		if seen[f.ID] {
			t.Errorf("duplicate figure id %s", f.ID)
		}
		seen[f.ID] = true
		if len(f.Tables) == 0 {
			t.Errorf("%s: no tables", f.ID)
		}
		var buf bytes.Buffer
		for _, tb := range f.Tables {
			if err := tb.Write(&buf); err != nil {
				t.Fatalf("%s: %v", f.ID, err)
			}
			if err := tb.WriteCSV(&buf); err != nil {
				t.Fatalf("%s csv: %v", f.ID, err)
			}
		}
		for _, ch := range f.Charts {
			if err := ch.Write(&buf); err != nil {
				t.Fatalf("%s chart: %v", f.ID, err)
			}
		}
		for _, gg := range f.Gantts {
			if err := gg.Write(&buf); err != nil {
				t.Fatalf("%s gantt: %v", f.ID, err)
			}
		}
		if buf.Len() == 0 {
			t.Errorf("%s rendered nothing", f.ID)
		}
	}
	for _, want := range []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig12", "fig13", "params"} {
		if !seen[want] {
			t.Errorf("figure %s missing", want)
		}
	}
}

func TestAblationsBuild(t *testing.T) {
	ctx := testContext(t)
	figs, err := ctx.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 8 {
		t.Fatalf("got %d ablations, want 8", len(figs))
	}
	var buf bytes.Buffer
	for _, f := range figs {
		for _, tb := range f.Tables {
			if err := tb.Write(&buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	out := buf.String()
	for _, want := range []string{"multiscale", "aerosol", "3-stage", "Scenario", "explicit"} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestWriteExperiments(t *testing.T) {
	ctx := testContext(t)
	var buf bytes.Buffer
	if err := ctx.WriteExperiments(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figures 6 & 7",
		"Figure 9", "Figure 13", "Section 4.3", "Verdict",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("experiments record missing section %q", want)
		}
	}
	if !strings.Contains(out, "HOLDS") {
		t.Error("no claims held")
	}
}

func TestFig3RequiresNE(t *testing.T) {
	ctx := testContext(t)
	ctx.NE = nil
	if _, err := ctx.Fig3(); err == nil {
		t.Error("Fig3 without NE trace accepted")
	}
}

func TestLoadCachesTraces(t *testing.T) {
	// Use the Mini dataset's speed... Load is wired to LA/NE, so only
	// exercise the cache mechanics via a pre-seeded cache file.
	ctx := testContext(t)
	dir := t.TempDir()
	if err := core.SaveTrace(filepath.Join(dir, "LA1h.trace"), ctx.LA); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.LA.TotalSteps() != ctx.LA.TotalSteps() {
		t.Error("cache not used")
	}
	if loaded.NE != nil {
		t.Error("NE trace loaded without being requested")
	}
}

// The headline qualitative claims of the paper must hold on the replayed
// figures (shape checks, not absolute numbers).
func TestPaperShapeClaims(t *testing.T) {
	ctx := testContext(t)
	t3e, t3d, par := machine.CrayT3E(), machine.CrayT3D(), machine.IntelParagon()

	// Performance portability: machine ordering holds at every node
	// count, and ratios are roughly constant (parallel log curves).
	var ratios []float64
	for _, p := range NodeCounts {
		a, err := core.Replay(ctx.LA, t3e, p, core.DataParallel)
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.Replay(ctx.LA, t3d, p, core.DataParallel)
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.Replay(ctx.LA, par, p, core.DataParallel)
		if err != nil {
			t.Fatal(err)
		}
		if !(a.Ledger.Total < b.Ledger.Total && b.Ledger.Total < c.Ledger.Total) {
			t.Errorf("p=%d: machine ordering violated", p)
		}
		ratios = append(ratios, c.Ledger.Total/a.Ledger.Total)
	}
	for _, r := range ratios {
		if r < 0.5*ratios[0] || r > 2*ratios[0] {
			t.Errorf("Paragon/T3E ratio drifts wildly: %v", ratios)
		}
	}
}
