package figures

import (
	"fmt"
	"math"

	"airshed/internal/chemistry"
	"airshed/internal/core"
	"airshed/internal/dist"
	frn "airshed/internal/foreign"
	"airshed/internal/grid"
	"airshed/internal/machine"
	"airshed/internal/popexp"
	"airshed/internal/report"
	"airshed/internal/species"
	"airshed/internal/transport"
)

// AblationTransportScheme quantifies the paper's central algorithmic
// trade-off (Sections 2.1 and 3): the 2-D multiscale operator needs far
// fewer points than a uniform grid of equal peak resolution but
// parallelises only over layers, while the 1-D uniform splitting
// parallelises over layers x rows at a higher sequential cost.
func (ctx *Context) AblationTransportScheme() (*Figure, error) {
	fig := &Figure{
		ID: "ablation-transport",
		Caption: "Ablation: 2-D multiscale SUPG vs 1-D uniform-grid splitting " +
			"(paper: uniform 1-D models offer better speedups but not necessarily better absolute performance)",
	}
	// The LA multiscale grid vs a uniform grid at the finest LA
	// resolution (level 3: 2.5 km cells over 200 km -> 80x80).
	multi, err := grid.New(200e3, 200e3, 10, 10)
	if err != nil {
		return nil, err
	}
	multi.RefineNear(90e3, 100e3, 3, 700)
	if err := multi.Finalize(); err != nil {
		return nil, err
	}
	uni, err := grid.Uniform(200e3, 200e3, 80, 80)
	if err != nil {
		return nil, err
	}

	op2, err := transport.New2D(multi)
	if err != nil {
		return nil, err
	}
	op1, err := transport.New1D(uni)
	if err != nil {
		return nil, err
	}

	// One hour of advection of a plume, identical physics.
	mkEnv := func(g *grid.Grid) *transport.Env {
		env := &transport.Env{U: make([]float64, len(g.Cells)), V: make([]float64, len(g.Cells)), KH: 100}
		for i := range env.U {
			env.U[i] = 5
			env.V[i] = 1.5
		}
		return env
	}
	mkField := func(g *grid.Grid) []float64 {
		c := make([]float64, len(g.Cells))
		for i := range g.Cells {
			dx := g.Cells[i].X - 60e3
			dy := g.Cells[i].Y - 100e3
			c[i] = math.Exp(-(dx*dx + dy*dy) / (2 * 15e3 * 15e3))
		}
		return c
	}

	env2 := mkEnv(multi)
	if _, err := op2.Prepare(env2); err != nil {
		return nil, err
	}
	c2 := mkField(multi)
	w2, err := op2.StepField(c2, env2, 3600)
	if err != nil {
		return nil, err
	}
	env1 := mkEnv(uni)
	if _, err := op1.Prepare(env1); err != nil {
		return nil, err
	}
	c1 := mkField(uni)
	w1, err := op1.StepField(c1, env1, 3600)
	if err != nil {
		return nil, err
	}

	layers := 5
	// Useful parallelism: 2-D only across layers; 1-D across layers and
	// one grid dimension (rows).
	par2 := layers
	par1 := layers * uni.NX0
	prof := machine.CrayT3E()
	seq2 := prof.ComputeTime(w2 * 6.0 * float64(layers) * 35) // all species, all layers
	seq1 := prof.ComputeTime(w1 * 6.0 * float64(layers) * 35)

	tb := report.NewTable("Transport scheme comparison (one hour, all layers and species, T3E model)",
		"Scheme", "Cells", "Seq time (s)", "Useful parallelism", "T @ P=4", "T @ P=64", "T @ P=400")
	timeAt := func(seq float64, par, p int) float64 {
		m := p
		if par < m {
			m = par
		}
		ceil := (par + m - 1) / m
		return seq * float64(ceil) / float64(par)
	}
	tb.AddRow("2-D multiscale SUPG", len(multi.Cells), seq2, par2,
		timeAt(seq2, par2, 4), timeAt(seq2, par2, 64), timeAt(seq2, par2, 400))
	tb.AddRow("1-D uniform splitting", len(uni.Cells), seq1, par1,
		timeAt(seq1, par1, 4), timeAt(seq1, par1, 64), timeAt(seq1, par1, 400))
	fig.Tables = append(fig.Tables, tb)
	return fig, nil
}

// AblationAerosolRedist quantifies the redistribution cost the replicated
// aerosol step forces: the paper's D_Chem -> D_Repl -> D_Trans path versus
// the direct D_Chem -> D_Trans path a parallelised aerosol would allow.
func (ctx *Context) AblationAerosolRedist() (*Figure, error) {
	fig := &Figure{
		ID: "ablation-aerosol",
		Caption: "Ablation: per-step redistribution cost with the replicated aerosol " +
			"(D_Chem->D_Repl->D_Trans) vs a hypothetical parallel aerosol (D_Chem->D_Trans direct), Cray T3E, LA shape",
	}
	sh := ctx.LA.Shape
	prof := machine.CrayT3E()
	tb := report.NewTable("Per-step communication cost (ms)",
		"Nodes", "Replicated aerosol path", "Direct path", "Ratio")
	for _, p := range NodeCounts {
		cr, err := dist.NewPlan(sh, dist.DChem, dist.DRepl, p, prof.WordSize)
		if err != nil {
			return nil, err
		}
		rt, err := dist.NewPlan(sh, dist.DRepl, dist.DTrans, p, prof.WordSize)
		if err != nil {
			return nil, err
		}
		ct, err := dist.NewPlan(sh, dist.DChem, dist.DTrans, p, prof.WordSize)
		if err != nil {
			return nil, err
		}
		replicated := cr.MaxCost(prof) + rt.MaxCost(prof)
		direct := ct.MaxCost(prof)
		tb.AddRow(p, 1000*replicated, 1000*direct, replicated/direct)
	}
	fig.Tables = append(fig.Tables, tb)
	return fig, nil
}

// AblationPipeline compares pipeline depths: no task parallelism, a
// 2-stage pipeline (single I/O task) and the paper's 3-stage pipeline.
func (ctx *Context) AblationPipeline() (*Figure, error) {
	fig := &Figure{
		ID: "ablation-pipeline",
		Caption: "Ablation: pipeline depth on the Intel Paragon, LA data set " +
			"(the paper's 3-stage input/compute/output split vs a single I/O task vs none)",
	}
	par := machine.IntelParagon()
	tb := report.NewTable("Execution time (s)",
		"Nodes", "No pipeline (data parallel)", "2-stage (combined I/O)", "3-stage (paper)")
	for _, p := range ParagonCounts {
		dp, err := core.Replay(ctx.LA, par, p, core.DataParallel)
		if err != nil {
			return nil, err
		}
		two, err := core.ReplayTaskCombined(ctx.LA, par, p)
		if err != nil {
			return nil, err
		}
		three, err := core.Replay(ctx.LA, par, p, core.TaskParallel)
		if err != nil {
			return nil, err
		}
		tb.AddRow(p, dp.Ledger.Total, two.Ledger.Total, three.Ledger.Total)
	}
	fig.Tables = append(fig.Tables, tb)
	return fig, nil
}

// AblationForeignScenario compares the Figure 11 coupling scenarios.
func (ctx *Context) AblationForeignScenario() (*Figure, error) {
	fig := &Figure{
		ID: "ablation-foreign",
		Caption: "Ablation: foreign-module coupling scenarios (Figure 11): A (interface node) vs " +
			"B (direct to module nodes) vs C (variable to variable), Intel Paragon, LA data set",
	}
	model, err := popexp.NewModel(species.StandardMechanism())
	if err != nil {
		return nil, err
	}
	par := machine.IntelParagon()
	tb := report.NewTable("Coupled execution (s)",
		"Nodes", "Scenario A total", "A coupling", "Scenario B total", "B coupling", "Scenario C total", "C coupling")
	for _, p := range []int{16, 32, 64} {
		row := []interface{}{p}
		for _, scn := range []frn.Scenario{frn.ScenarioA, frn.ScenarioB, frn.ScenarioC} {
			r, err := frn.ReplayCoupled(ctx.LA, model, par, p, true, scn)
			if err != nil {
				return nil, err
			}
			row = append(row, r.Ledger.Total, r.CouplingSeconds)
		}
		tb.AddRow(row...)
	}
	fig.Tables = append(fig.Tables, tb)
	return fig, nil
}

// AblationAllocation compares the fixed group-sizing heuristic of the
// coupled pipeline against the Fx optimal processor-allocation machinery
// (Subhlok-Vondran mapping, the paper's references [26, 27]).
func (ctx *Context) AblationAllocation() (*Figure, error) {
	fig := &Figure{
		ID: "ablation-allocation",
		Caption: "Ablation: coupled-pipeline node allocation — fixed heuristic (popexp = P/8) vs " +
			"the Fx optimal pipeline mapping, Intel Paragon, LA data set",
	}
	model, err := popexp.NewModel(species.StandardMechanism())
	if err != nil {
		return nil, err
	}
	par := machine.IntelParagon()
	tb := report.NewTable("Coupled execution time (s)",
		"Nodes", "Heuristic groups", "Heuristic time", "Optimal groups", "Optimal time", "Gain %")
	for _, p := range []int{8, 16, 32, 64} {
		hg, err := frn.GroupsFor(p)
		if err != nil {
			return nil, err
		}
		hres, err := frn.ReplayCoupledGroups(ctx.LA, model, par, hg, true, frn.ScenarioA)
		if err != nil {
			return nil, err
		}
		og, err := frn.AutoGroups(ctx.LA, model, par, p)
		if err != nil {
			return nil, err
		}
		ores, err := frn.ReplayCoupledGroups(ctx.LA, model, par, og, true, frn.ScenarioA)
		if err != nil {
			return nil, err
		}
		gain := 100 * (hres.Ledger.Total - ores.Ledger.Total) / hres.Ledger.Total
		tb.AddRow(p,
			fmt.Sprintf("c=%d pe=%d", hg.Compute, hg.PopExp), hres.Ledger.Total,
			fmt.Sprintf("c=%d pe=%d", og.Compute, og.PopExp), ores.Ledger.Total,
			gain)
	}
	fig.Tables = append(fig.Tables, tb)
	return fig, nil
}

// AblationIntegrator shows why the Young-Boris hybrid is necessary: the
// explicit scheme must track the fastest radical timescale, exploding the
// evaluation count on the photochemical mechanism.
func (ctx *Context) AblationIntegrator() (*Figure, error) {
	fig := &Figure{
		ID: "ablation-integrator",
		Caption: "Ablation: Young-Boris hybrid vs fully explicit integration of one daytime " +
			"parcel for 1 minute (the hybrid's stiff branch is what makes hour-scale steps affordable)",
	}
	mech := species.StandardMechanism()
	run := func(disableStiff bool) (chemistry.Work, []float64, error) {
		cfg := chemistry.DefaultConfig()
		cfg.DisableStiff = disableStiff
		cfg.MinDt = 1e-4
		in, err := chemistry.NewIntegrator(mech, cfg)
		if err != nil {
			return chemistry.Work{}, nil, err
		}
		c := mech.Backgrounds()
		c[mech.MustIndex("NO")] = 0.02
		c[mech.MustIndex("NO2")] = 0.03
		w, err := in.Integrate(c, 1.0, 298, 1.0)
		return w, c, err
	}
	hw, hc, err := run(false)
	if err != nil {
		return nil, err
	}
	ew, ec, err := run(true)
	if err != nil {
		return nil, err
	}
	maxDiff := 0.0
	for i := range hc {
		d := math.Abs(hc[i] - ec[i])
		if s := math.Abs(hc[i]) + 1e-9; d/s > maxDiff {
			maxDiff = d / s
		}
	}
	tb := report.NewTable("Integrator comparison (1 simulated minute, daytime urban parcel)",
		"Scheme", "Substeps", "Rejected", "ProdLoss evals", "Evals ratio")
	tb.AddRow("Young-Boris hybrid", hw.Substeps, hw.Rejected, hw.Evals, 1.0)
	tb.AddRow("Fully explicit", ew.Substeps, ew.Rejected, ew.Evals, float64(ew.Evals)/float64(hw.Evals))
	note := report.NewTable("", "Note", "Value")
	note.AddRow("max relative state difference (explicit is also less accurate at its floor step)",
		fmt.Sprintf("%.3g", maxDiff))
	fig.Tables = append(fig.Tables, tb, note)
	return fig, nil
}

// Ablations runs all ablation studies.
func (ctx *Context) Ablations() ([]*Figure, error) {
	builders := []func() (*Figure, error){
		ctx.AblationTransportScheme,
		ctx.AblationAerosolRedist,
		ctx.AblationPipeline,
		ctx.AblationForeignScenario,
		ctx.AblationAllocation,
		ctx.AblationIntegrator,
		ctx.StudyLoadBalance,
		ctx.StudyDiurnalWork,
	}
	var figs []*Figure
	for _, b := range builders {
		f, err := b()
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}
