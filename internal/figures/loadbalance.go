package figures

import (
	"airshed/internal/dist"
	"airshed/internal/report"
)

// StudyLoadBalance quantifies the chemistry load imbalance: the analytic
// model assumes uniform per-cell work (time = sequential / useful
// parallelism), but the urban-core cells run stiffer photochemistry and
// cost more, so the block partition's most-loaded node exceeds the
// average — the source of the gap between the Figure 7 predictions and
// measurements that the paper attributes to effects "the aggregate model
// cannot see".
func (ctx *Context) StudyLoadBalance() (*Figure, error) {
	fig := &Figure{
		ID: "study-loadbalance",
		Caption: "Study: chemistry load imbalance of the BLOCK cell partition, LA data set " +
			"(imbalance = most-loaded node / average node; 1.0 is perfect)",
	}
	tr := ctx.LA
	// Aggregate per-cell work over the run.
	cellWork := make([]float64, tr.Shape.Cells)
	for hi := range tr.Hours {
		for si := range tr.Hours[hi].Steps {
			for c, f := range tr.Hours[hi].Steps[si].CellFlops {
				cellWork[c] += f
			}
		}
	}
	total := 0.0
	minW, maxW := cellWork[0], cellWork[0]
	for _, w := range cellWork {
		total += w
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}

	tb := report.NewTable("Imbalance vs node count",
		"Nodes", "Avg node work", "Max node work", "Imbalance", "Parallel efficiency %")
	for _, p := range NodeCounts {
		maxNode := 0.0
		for n := 0; n < p; n++ {
			iv := dist.BlockOwner(tr.Shape.Cells, p, n)
			w := 0.0
			for c := iv.Lo; c < iv.Hi; c++ {
				w += cellWork[c]
			}
			if w > maxNode {
				maxNode = w
			}
		}
		avg := total / float64(p)
		tb.AddRow(p, avg, maxNode, maxNode/avg, 100*avg/maxNode)
	}
	fig.Tables = append(fig.Tables, tb)

	cells := report.NewTable("Per-cell chemistry work spread (flops over the run)",
		"Statistic", "Value")
	cells.AddRow("cells", tr.Shape.Cells)
	cells.AddRow("min cell", minW)
	cells.AddRow("mean cell", total/float64(tr.Shape.Cells))
	cells.AddRow("max cell", maxW)
	cells.AddRow("max/min", maxW/minW)
	fig.Tables = append(fig.Tables, cells)
	return fig, nil
}

// StudyDiurnalWork profiles the charged work per simulated hour: the
// paper's "number of time steps determined at runtime" and the stiff
// integrator's adaptivity make the cost of an Airshed hour follow the
// meteorology — more steps when winds peak, costlier chemistry when
// photochemistry is active.
func (ctx *Context) StudyDiurnalWork() (*Figure, error) {
	fig := &Figure{
		ID: "study-diurnal",
		Caption: "Study: charged work per simulated hour, LA data set " +
			"(steps follow the wind CFL; chemistry work follows the diurnal photochemistry)",
	}
	tr := ctx.LA
	tb := report.NewTable("Per-hour work profile",
		"Hour", "Steps", "Chemistry (Gflop)", "Transport (Gflop)", "Per-step chemistry (Gflop)")
	ch := report.NewChart("Chemistry work per hour (Gflop)")
	var xs, ys []float64
	for hi := range tr.Hours {
		h := &tr.Hours[hi]
		var chem, trans float64
		for si := range h.Steps {
			for _, f := range h.Steps[si].CellFlops {
				chem += f
			}
			for _, f := range h.Steps[si].LayerFlops {
				trans += 2 * f
			}
		}
		tb.AddRow(hi, len(h.Steps), chem/1e9, trans/1e9, chem/1e9/float64(len(h.Steps)))
		xs = append(xs, float64(hi))
		ys = append(ys, chem/1e9)
	}
	ch.Add("chemistry Gflop", xs, ys)
	fig.Tables = append(fig.Tables, tb)
	fig.Charts = append(fig.Charts, ch)
	return fig, nil
}
