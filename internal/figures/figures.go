// Package figures regenerates every evaluation artifact of the paper —
// Figures 2 through 7, 9 and 13 plus the Section 4.3 parameter table —
// and the ablation studies listed in DESIGN.md, as tables and ASCII
// charts. It is the shared engine behind cmd/benchfig and the repository
// benchmarks.
//
// The expensive physical runs (the 24-hour LA and NE simulations) execute
// once and are cached as work traces (core.CachedTrace); every figure is
// then priced by replaying the traces on the paper's machine profiles.
package figures

import (
	"fmt"
	"path/filepath"

	"airshed/internal/core"
	"airshed/internal/datasets"
	"airshed/internal/dist"
	frn "airshed/internal/foreign"
	"airshed/internal/machine"
	"airshed/internal/perfmodel"
	"airshed/internal/popexp"
	"airshed/internal/report"
	"airshed/internal/species"
	"airshed/internal/vm"
)

// NodeCounts is the node axis of the paper's figures.
var NodeCounts = []int{4, 8, 16, 32, 64, 128}

// ParagonCounts is the node axis of the Paragon experiments (Figures 9
// and 13 stop at 64).
var ParagonCounts = []int{4, 8, 16, 32, 64}

// Context holds the cached work traces.
type Context struct {
	LA *core.Trace
	NE *core.Trace
	// Hours is the simulated duration the traces cover.
	Hours int

	// Claim bookkeeping from the last WriteExperiments run.
	lastClaims, lastHeld int
	lastFailures         []string
}

// Load builds (or loads from cacheDir) the LA trace, and the NE trace when
// includeNE is set. hours is the simulated duration (the paper uses 24).
func Load(cacheDir string, hours int, includeNE bool) (*Context, error) {
	ctx := &Context{Hours: hours}
	run := func(build func() (*datasets.Dataset, error)) (*core.Trace, error) {
		ds, err := build()
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%s%dh.trace", ds.Name, hours)
		return core.CachedTrace(filepath.Join(cacheDir, name), func() (*core.Trace, error) {
			res, err := core.Run(core.Config{
				Dataset: ds,
				Machine: machine.CrayT3E(),
				Nodes:   1,
				Hours:   hours,
				Mode:    core.DataParallel,
			})
			if err != nil {
				return nil, err
			}
			return res.Trace, nil
		})
	}
	var err error
	if ctx.LA, err = run(datasets.LA); err != nil {
		return nil, fmt.Errorf("figures: building LA trace: %w", err)
	}
	if includeNE {
		if ctx.NE, err = run(datasets.NE); err != nil {
			return nil, fmt.Errorf("figures: building NE trace: %w", err)
		}
	}
	return ctx, nil
}

// Figure is one regenerated evaluation artifact.
type Figure struct {
	ID      string
	Caption string
	Tables  []*report.Table
	Charts  []*report.Chart
	Gantts  []*report.Gantt
}

// replayOrDie wraps Replay for figure construction.
func replay(tr *core.Trace, prof *machine.Profile, p int, mode core.Mode) (*core.ReplayResult, error) {
	return core.Replay(tr, prof, p, mode)
}

// Fig2 reproduces Figure 2: execution times of the LA data set on the
// T3E, T3D and Paragon, 4-128 nodes, as a table plus linear- and
// log-scale charts.
func (ctx *Context) Fig2() (*Figure, error) {
	fig := &Figure{
		ID: "fig2",
		Caption: "Figure 2: Execution times for the Airshed application using the LA data set " +
			"(paper: near-parallel log-scale curves; T3D just under 2x, T3E ~10x faster than Paragon)",
	}
	tb := report.NewTable("Execution time (s), LA data set", "Nodes", "Cray T3E", "Cray T3D", "Intel Paragon")
	lin := report.NewChart("Figure 2a: time vs nodes (linear)")
	lg := report.NewChart("Figure 2b: time vs nodes (log-log)")
	lg.LogX, lg.LogY = true, true
	var xs []float64
	series := map[string][]float64{}
	for _, p := range NodeCounts {
		row := []interface{}{p}
		xs = append(xs, float64(p))
		for _, prof := range machine.PaperTrio() {
			rr, err := replay(ctx.LA, prof, p, core.DataParallel)
			if err != nil {
				return nil, err
			}
			row = append(row, rr.Ledger.Total)
			series[prof.Name] = append(series[prof.Name], rr.Ledger.Total)
		}
		tb.AddRow(row...)
	}
	for _, prof := range machine.PaperTrio() {
		lin.Add(prof.Name, xs, series[prof.Name])
		lg.Add(prof.Name, xs, series[prof.Name])
	}
	fig.Tables = append(fig.Tables, tb)
	fig.Charts = append(fig.Charts, lin, lg)
	return fig, nil
}

// Fig3 reproduces Figure 3: LA vs NE execution times on the T3E. Requires
// the NE trace.
func (ctx *Context) Fig3() (*Figure, error) {
	if ctx.NE == nil {
		return nil, fmt.Errorf("figures: Fig3 needs the NE trace (run with NE enabled)")
	}
	fig := &Figure{
		ID: "fig3",
		Caption: "Figure 3: Airshed execution times on the Cray T3E for the LA and NE data sets " +
			"(paper: broadly similar speedup patterns)",
	}
	tb := report.NewTable("Execution time (s), Cray T3E", "Nodes", "LA Dataset", "NE Dataset", "NE/LA")
	lg := report.NewChart("Figure 3b: time vs nodes (log-log)")
	lg.LogX, lg.LogY = true, true
	t3e := machine.CrayT3E()
	var xs, las, nes []float64
	for _, p := range NodeCounts {
		la, err := replay(ctx.LA, t3e, p, core.DataParallel)
		if err != nil {
			return nil, err
		}
		ne, err := replay(ctx.NE, t3e, p, core.DataParallel)
		if err != nil {
			return nil, err
		}
		tb.AddRow(p, la.Ledger.Total, ne.Ledger.Total, ne.Ledger.Total/la.Ledger.Total)
		xs = append(xs, float64(p))
		las = append(las, la.Ledger.Total)
		nes = append(nes, ne.Ledger.Total)
	}
	lg.Add("LA Dataset", xs, las)
	lg.Add("NE Dataset", xs, nes)
	fig.Tables = append(fig.Tables, tb)
	fig.Charts = append(fig.Charts, lg)
	return fig, nil
}

// Fig4 reproduces Figure 4: scaling of the application components on the
// T3E with the LA data set.
func (ctx *Context) Fig4() (*Figure, error) {
	fig := &Figure{
		ID: "fig4",
		Caption: "Figure 4: Scaling of Airshed components on a Cray T3E, LA data set " +
			"(paper: chemistry scales ~linearly, transport saturates at the 5-layer limit, I/O constant, communication small)",
	}
	tb := report.NewTable("Component times (s), Cray T3E, LA",
		"Nodes", "Chemistry", "Transport", "I/O Processing", "Communication", "Aerosol", "Total")
	ch := report.NewChart("Figure 4: component times vs nodes")
	ch.LogY = true
	t3e := machine.CrayT3E()
	var xs []float64
	comp := map[string][]float64{}
	for _, p := range NodeCounts {
		rr, err := replay(ctx.LA, t3e, p, core.DataParallel)
		if err != nil {
			return nil, err
		}
		l := rr.Ledger
		tb.AddRow(p, l.ByCat[vm.CatChemistry], l.ByCat[vm.CatTransport],
			l.ByCat[vm.CatIO], l.ByCat[vm.CatComm], l.ByCat[vm.CatAerosol], l.Total)
		xs = append(xs, float64(p))
		comp["chemistry"] = append(comp["chemistry"], l.ByCat[vm.CatChemistry])
		comp["transport"] = append(comp["transport"], l.ByCat[vm.CatTransport])
		comp["io"] = append(comp["io"], l.ByCat[vm.CatIO])
		comp["communication"] = append(comp["communication"], l.ByCat[vm.CatComm])
	}
	for _, name := range []string{"chemistry", "transport", "io", "communication"} {
		ch.Add(name, xs, comp[name])
	}
	fig.Tables = append(fig.Tables, tb)
	fig.Charts = append(fig.Charts, ch)
	return fig, nil
}

// Fig5 reproduces Figure 5: the per-kind redistribution times on the T3E
// with the LA data set.
func (ctx *Context) Fig5() (*Figure, error) {
	fig := &Figure{
		ID: "fig5",
		Caption: "Figure 5: Scaling of communication steps (redistribution kinds), Cray T3E, LA data set " +
			"(paper: D_Chem->D_Repl highest and slowly rising; D_Repl->D_Trans drops 4->8 then flat; " +
			"D_Trans->D_Chem drops 4->8 then gently rises)",
	}
	tb := report.NewTable("Redistribution time over the run (s), Cray T3E, LA",
		"Nodes", core.KindReplToTrans, core.KindTransToChem, core.KindChemToRepl, core.KindTransToRepl)
	ch := report.NewChart("Figure 5: redistribution times vs nodes")
	t3e := machine.CrayT3E()
	var xs []float64
	series := map[string][]float64{}
	for _, p := range NodeCounts {
		rr, err := replay(ctx.LA, t3e, p, core.DataParallel)
		if err != nil {
			return nil, err
		}
		tb.AddRow(p, rr.CommSeconds[core.KindReplToTrans], rr.CommSeconds[core.KindTransToChem],
			rr.CommSeconds[core.KindChemToRepl], rr.CommSeconds[core.KindTransToRepl])
		xs = append(xs, float64(p))
		for _, k := range core.RedistKinds() {
			series[k] = append(series[k], rr.CommSeconds[k])
		}
	}
	for _, k := range []string{core.KindChemToRepl, core.KindTransToChem, core.KindReplToTrans} {
		ch.Add(k, xs, series[k])
	}
	fig.Tables = append(fig.Tables, tb)
	fig.Charts = append(fig.Charts, ch)
	return fig, nil
}

// Fig6 reproduces Figure 6: predicted (analytic model, Section 4.2) versus
// measured (replayed) redistribution times on the T3E.
func (ctx *Context) Fig6() (*Figure, error) {
	fig := &Figure{
		ID: "fig6",
		Caption: "Figure 6: Predicted (P) and measured (M) times for the communication steps, " +
			"Cray T3E, LA data set (paper: estimates close to measurements)",
	}
	tb := report.NewTable("Communication over the run (s): predicted vs measured",
		"Nodes",
		"Repl->Trans M", "Repl->Trans P",
		"Trans->Chem M", "Trans->Chem P",
		"Chem->Repl M", "Chem->Repl P")
	t3e := machine.CrayT3E()
	for _, p := range NodeCounts {
		rr, err := replay(ctx.LA, t3e, p, core.DataParallel)
		if err != nil {
			return nil, err
		}
		pred, err := perfmodel.Predict(ctx.LA, t3e, p)
		if err != nil {
			return nil, err
		}
		tb.AddRow(p,
			rr.CommSeconds[core.KindReplToTrans], pred.CommByKind[core.KindReplToTrans],
			rr.CommSeconds[core.KindTransToChem], pred.CommByKind[core.KindTransToChem],
			rr.CommSeconds[core.KindChemToRepl], pred.CommByKind[core.KindChemToRepl])
	}
	fig.Tables = append(fig.Tables, tb)
	return fig, nil
}

// Fig7 reproduces Figure 7: predicted versus measured computation phase
// times on the T3E.
func (ctx *Context) Fig7() (*Figure, error) {
	fig := &Figure{
		ID: "fig7",
		Caption: "Figure 7: Predicted (P) and measured (M) times for the computation phases, " +
			"Cray T3E, LA data set (paper: computation estimates even closer than communication)",
	}
	tb := report.NewTable("Computation phases (s): predicted vs measured",
		"Nodes", "Chem M", "Chem P", "Trans M", "Trans P", "I/O M", "I/O P", "Total M", "Total P")
	t3e := machine.CrayT3E()
	for _, p := range NodeCounts {
		rr, err := replay(ctx.LA, t3e, p, core.DataParallel)
		if err != nil {
			return nil, err
		}
		pred, err := perfmodel.Predict(ctx.LA, t3e, p)
		if err != nil {
			return nil, err
		}
		tb.AddRow(p,
			rr.Ledger.ByCat[vm.CatChemistry], pred.Chemistry,
			rr.Ledger.ByCat[vm.CatTransport], pred.Transport,
			rr.Ledger.ByCat[vm.CatIO], pred.IO,
			rr.Ledger.Total, pred.Total)
	}
	fig.Tables = append(fig.Tables, tb)
	return fig, nil
}

// Fig9 reproduces Figure 9: speedup of the data-parallel versus the
// task+data-parallel Airshed on the Intel Paragon, including the paper's
// observation about the sequential I/O fraction.
func (ctx *Context) Fig9() (*Figure, error) {
	fig := &Figure{
		ID: "fig9",
		Caption: "Figure 9: Speedup on the Intel Paragon, data-parallel vs task+data-parallel " +
			"(paper: task parallelism removes the I/O bottleneck; ~25% faster at 64 nodes)",
	}
	par := machine.IntelParagon()
	seq, err := replay(ctx.LA, par, 1, core.DataParallel)
	if err != nil {
		return nil, err
	}
	ioFrac1 := seq.Ledger.ByCat[vm.CatIO] / seq.Ledger.Total

	tb := report.NewTable("Speedup vs 1-node sequential, Intel Paragon, LA",
		"Nodes", "Data Parallel", "Task+Data Parallel", "Time DP (s)", "Time TP (s)", "Improvement %")
	ch := report.NewChart("Figure 9: speedup vs nodes")
	var xs, dps, tps []float64
	var ioFrac64 float64
	for _, p := range ParagonCounts {
		dp, err := replay(ctx.LA, par, p, core.DataParallel)
		if err != nil {
			return nil, err
		}
		tp, err := replay(ctx.LA, par, p, core.TaskParallel)
		if err != nil {
			return nil, err
		}
		imp := 100 * (dp.Ledger.Total - tp.Ledger.Total) / dp.Ledger.Total
		tb.AddRow(p, seq.Ledger.Total/dp.Ledger.Total, seq.Ledger.Total/tp.Ledger.Total,
			dp.Ledger.Total, tp.Ledger.Total, imp)
		xs = append(xs, float64(p))
		dps = append(dps, seq.Ledger.Total/dp.Ledger.Total)
		tps = append(tps, seq.Ledger.Total/tp.Ledger.Total)
		if p == 64 {
			ioFrac64 = dp.Ledger.ByCat[vm.CatIO] / dp.Ledger.Total
		}
	}
	ch.Add("Data Parallel", xs, dps)
	ch.Add("Task and Data Parallel", xs, tps)
	note := report.NewTable("Section 5 observation: sequential I/O processing fraction (Paragon)",
		"Configuration", "I/O fraction %")
	note.AddRow("sequential (1 node)", 100*ioFrac1)
	note.AddRow("data-parallel, 64 nodes", 100*ioFrac64)
	fig.Tables = append(fig.Tables, tb, note)
	fig.Charts = append(fig.Charts, ch)
	return fig, nil
}

// Fig13 reproduces Figure 13: the coupled Airshed+PopExp application with
// PopExp as a native task versus as a PVM foreign module, on the Paragon.
func (ctx *Context) Fig13() (*Figure, error) {
	fig := &Figure{
		ID: "fig13",
		Caption: "Figure 13: Airshed+PopExp with PopExp native vs as PVM foreign module, Intel Paragon " +
			"(paper: a fixed, relatively small, extra overhead for the foreign module)",
	}
	model, err := popexp.NewModel(species.StandardMechanism())
	if err != nil {
		return nil, err
	}
	par := machine.IntelParagon()
	tb := report.NewTable("Coupled execution time (s), Intel Paragon, LA",
		"Nodes", "Native Task", "Foreign Module", "Overhead (s)", "Overhead %")
	ch := report.NewChart("Figure 13: coupled time vs nodes")
	ch.LogY = true
	var xs, nats, frns []float64
	for _, p := range ParagonCounts {
		nat, err := frn.ReplayCoupled(ctx.LA, model, par, p, false, frn.ScenarioA)
		if err != nil {
			return nil, err
		}
		fr, err := frn.ReplayCoupled(ctx.LA, model, par, p, true, frn.ScenarioA)
		if err != nil {
			return nil, err
		}
		over := fr.Ledger.Total - nat.Ledger.Total
		tb.AddRow(p, nat.Ledger.Total, fr.Ledger.Total, over, 100*over/nat.Ledger.Total)
		xs = append(xs, float64(p))
		nats = append(nats, nat.Ledger.Total)
		frns = append(frns, fr.Ledger.Total)
	}
	ch.Add("Native Task", xs, nats)
	ch.Add("Foreign Module", xs, frns)
	fig.Tables = append(fig.Tables, tb)
	fig.Charts = append(fig.Charts, ch)
	return fig, nil
}

// Params reproduces the Section 4.3 parameter estimation: fitting L, G
// and H from communication measurements at small node counts.
func (ctx *Context) Params() (*Figure, error) {
	fig := &Figure{
		ID: "params",
		Caption: "Section 4.3: communication parameters estimated from small-node measurements " +
			"(paper's T3E values: L=5.2e-5 s/msg, G=2.47e-8 s/B, H=2.04e-8 s/B)",
	}
	tb := report.NewTable("Fitted communication parameters",
		"Machine", "L fitted", "L true", "G fitted", "G true", "H fitted", "H true")
	for _, prof := range machine.PaperTrio() {
		samples, err := perfmodel.SamplesFromPlans(ctx.LA.Shape, prof, []int{2, 4, 8}, func(t dist.NodeTraffic) float64 {
			return t.Cost(prof)
		})
		if err != nil {
			return nil, err
		}
		l, g, h, err := perfmodel.FitLGH(samples)
		if err != nil {
			return nil, err
		}
		tb.AddRow(prof.Name, l, prof.LatencySec, g, prof.ByteSec, h, prof.CopySec)
	}
	fig.Tables = append(fig.Tables, tb)
	return fig, nil
}

// All regenerates every figure available in this context (Fig3 only when
// the NE trace is loaded).
func (ctx *Context) All() ([]*Figure, error) {
	builders := []func() (*Figure, error){
		ctx.Fig2, ctx.Fig4, ctx.Fig5, ctx.Fig6, ctx.Fig7, ctx.Fig8, ctx.Fig9, ctx.Fig12, ctx.Fig13, ctx.Params,
	}
	if ctx.NE != nil {
		builders = append([]func() (*Figure, error){ctx.Fig2, ctx.Fig3}, builders[1:]...)
	}
	var figs []*Figure
	for _, b := range builders {
		f, err := b()
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}
