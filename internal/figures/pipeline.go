package figures

import (
	"airshed/internal/core"
	frn "airshed/internal/foreign"
	"airshed/internal/machine"
	"airshed/internal/popexp"
	"airshed/internal/report"
	"airshed/internal/species"
)

// ganttHours is how many leading hours the pipeline diagrams draw.
const ganttHours = 6

// timelineGantt renders the first hours of a replay timeline.
func timelineGantt(title string, rows []string, timeline []core.StageInterval) *report.Gantt {
	g := report.NewGantt(title, rows...)
	for _, iv := range timeline {
		if iv.Hour >= ganttHours {
			continue
		}
		g.Add(iv.Stage, byte('0'+iv.Hour%10), iv.Start, iv.End)
	}
	return g
}

// Fig8 reproduces Figure 8 as a measured artifact: the paper draws the
// 3-stage pipelined task structure ("Processing Inputs Hour i+1 |
// Transport/Chemistry Hour i | Processing Outputs Hour i-1") as a diagram;
// here the same structure is rendered from the actual replayed schedule on
// the Intel Paragon.
func (ctx *Context) Fig8() (*Figure, error) {
	fig := &Figure{
		ID: "fig8",
		Caption: "Figure 8: Pipelined task parallelism in Airshed — the measured schedule " +
			"(input reads hour i+1 while hour i computes and hour i-1 writes), Intel Paragon, 16 nodes",
	}
	rr, err := core.Replay(ctx.LA, machine.IntelParagon(), 16, core.TaskParallel)
	if err != nil {
		return nil, err
	}
	g := timelineGantt("Pipeline schedule, first hours (digits mark the hour being processed)",
		[]string{"input", "compute", "output"}, rr.Timeline)
	fig.Gantts = append(fig.Gantts, g)
	tb := report.NewTable("Stage busy time over the run (s)", "Stage", "Busy until")
	for _, stage := range []string{"input", "compute", "output"} {
		tb.AddRow(stage, rr.StageBound[stage])
	}
	fig.Tables = append(fig.Tables, tb)
	return fig, nil
}

// Fig12 reproduces Figure 12 likewise: the 4-stage structure of the
// combined Airshed + PopExp computation, rendered from the replayed
// coupled schedule.
func (ctx *Context) Fig12() (*Figure, error) {
	fig := &Figure{
		ID: "fig12",
		Caption: "Figure 12: The structure of the Airshed and PopExp computation — the measured " +
			"4-stage pipelined schedule (PopExp consumes hour i alongside output processing), Intel Paragon, 32 nodes",
	}
	model, err := popexp.NewModel(species.StandardMechanism())
	if err != nil {
		return nil, err
	}
	rr, err := frn.ReplayCoupled(ctx.LA, model, machine.IntelParagon(), 32, true, frn.ScenarioA)
	if err != nil {
		return nil, err
	}
	g := timelineGantt("Coupled pipeline schedule, first hours",
		[]string{"input", "compute", "output", "popexp"}, rr.Timeline)
	fig.Gantts = append(fig.Gantts, g)
	tb := report.NewTable("Node groups", "Stage", "Nodes")
	tb.AddRow("input", rr.Groups.Input)
	tb.AddRow("compute", rr.Groups.Compute)
	tb.AddRow("output", rr.Groups.Output)
	tb.AddRow("popexp", rr.Groups.PopExp)
	fig.Tables = append(fig.Tables, tb)
	return fig, nil
}
