// Package machine defines parameterised profiles of the distributed-memory
// parallel computers used in the IPPS'98 Airshed paper: the Intel Paragon
// XP/S, the Cray T3D and the Cray T3E, plus a profile describing the real Go
// host for wall-clock runs.
//
// A profile captures exactly the quantities the paper's performance model
// (Section 4) needs:
//
//   - the per-node rate of executing the application's floating point work,
//   - the communication parameters of the cost equation
//     Ct = L*m + G*b + H*c
//     where m is the number of messages, b the number of bytes communicated
//     and c the number of bytes locally copied, and
//   - the machine word size W in bytes.
//
// The T3E parameters are the ones the paper measured (Section 4.3):
// L = 5.2e-5 s/message, G = 2.47e-8 s/byte, H = 2.04e-8 s/byte, W = 8.
// The Paragon and T3D profiles are derived from the paper's reported
// relative machine speeds (the T3D is "just under a factor of 2" and the
// T3E "approximately a factor of 10" faster than the Paragon) and from
// era-appropriate interconnect characteristics; they are documented per
// profile below and in DESIGN.md.
package machine

import (
	"fmt"
	"sort"
	"sync"
)

// Profile describes one target machine for the virtual bulk-synchronous
// machine in package vm. All times are in seconds.
type Profile struct {
	// Name identifies the machine in reports ("Cray T3E").
	Name string

	// FlopTime is the time one node takes to execute one unit of
	// application floating point work (seconds per flop). The absolute
	// value calibrates the virtual clock; ratios between profiles
	// reproduce the paper's relative machine speeds.
	FlopTime float64

	// LatencySec is L: per-message latency and startup cost in seconds.
	LatencySec float64

	// ByteSec is G: per-byte cost of data that crosses between nodes,
	// covering copying to/from the interconnect, in seconds per byte.
	ByteSec float64

	// CopySec is H: per-byte cost of purely local copies performed during
	// a logical communication phase (redistribution), in seconds per byte.
	CopySec float64

	// WordSize is W: size of a floating point word in bytes.
	WordSize int

	// IOByteSec is the sequential cost of reading or writing one byte in
	// the I/O processing phases (inputhour, pretrans, outputhour). The
	// paper treats I/O processing as sequential computation; we charge it
	// per byte moved through the hourly snapshot files.
	IOByteSec float64

	// IOFixedSec is a fixed per-hour I/O processing overhead (file open,
	// header parsing, preprocessing setup).
	IOFixedSec float64
}

// Validate reports an error if the profile has non-positive or missing
// parameters. A zero Profile is invalid.
func (p *Profile) Validate() error {
	switch {
	case p == nil:
		return fmt.Errorf("machine: nil profile")
	case p.Name == "":
		return fmt.Errorf("machine: profile has empty name")
	case p.FlopTime <= 0:
		return fmt.Errorf("machine %s: FlopTime must be positive, got %g", p.Name, p.FlopTime)
	case p.LatencySec < 0:
		return fmt.Errorf("machine %s: LatencySec must be non-negative, got %g", p.Name, p.LatencySec)
	case p.ByteSec < 0:
		return fmt.Errorf("machine %s: ByteSec must be non-negative, got %g", p.Name, p.ByteSec)
	case p.CopySec < 0:
		return fmt.Errorf("machine %s: CopySec must be non-negative, got %g", p.Name, p.CopySec)
	case p.WordSize <= 0:
		return fmt.Errorf("machine %s: WordSize must be positive, got %d", p.Name, p.WordSize)
	case p.IOByteSec < 0:
		return fmt.Errorf("machine %s: IOByteSec must be non-negative, got %g", p.Name, p.IOByteSec)
	case p.IOFixedSec < 0:
		return fmt.Errorf("machine %s: IOFixedSec must be non-negative, got %g", p.Name, p.IOFixedSec)
	}
	return nil
}

// CommTime evaluates the paper's communication cost equation
// Ct = L*m + G*b + H*c for m messages, b communicated bytes and c locally
// copied bytes.
func (p *Profile) CommTime(messages int, bytes, copied int64) float64 {
	return p.LatencySec*float64(messages) + p.ByteSec*float64(bytes) + p.CopySec*float64(copied)
}

// ComputeTime converts a number of work units (flops) into seconds on one
// node of this machine.
func (p *Profile) ComputeTime(flops float64) float64 {
	return p.FlopTime * flops
}

// IOTime charges bytes of sequential I/O processing plus the fixed per-call
// overhead.
func (p *Profile) IOTime(bytes int64) float64 {
	return p.IOFixedSec + p.IOByteSec*float64(bytes)
}

// String implements fmt.Stringer.
func (p *Profile) String() string { return p.Name }

// The calibration base: the paper's Paragon runs take roughly 4000 seconds
// for the 24-hour LA simulation on 4 nodes. paragonFlopTime is chosen so
// that our synthetic LA workload lands in that regime; the T3D and T3E
// rates then follow the paper's reported ratios.
const paragonFlopTime = 1.0 / 7.5e6 // ~7.5 Mflop/s sustained per node

// CrayT3E is the Cray T3E profile. Communication parameters are the values
// the paper measured for Fx-generated communication (Section 4.3).
func CrayT3E() *Profile {
	return &Profile{
		Name:       "Cray T3E",
		FlopTime:   paragonFlopTime / 10.0, // paper: ~10x faster than Paragon
		LatencySec: 5.2e-5,
		ByteSec:    2.47e-8,
		CopySec:    2.04e-8,
		WordSize:   8,
		IOByteSec:  6.75e-7,
		IOFixedSec: 0.08,
	}
}

// CrayT3D is the Cray T3D profile. The paper reports it "just under a
// factor of 2" faster than the Paragon; we use 1.9. Latency and bandwidth
// parameters reflect the T3D's shmem-era interconnect: similar latency to
// the T3E's measured value but roughly a third of the per-byte throughput.
func CrayT3D() *Profile {
	return &Profile{
		Name:       "Cray T3D",
		FlopTime:   paragonFlopTime / 1.9,
		LatencySec: 7.5e-5,
		ByteSec:    7.4e-8,
		CopySec:    4.1e-8,
		WordSize:   8,
		IOByteSec:  3.4e-6,
		IOFixedSec: 0.11,
	}
}

// IntelParagon is the Intel Paragon XP/S profile, the slowest of the three:
// i860 nodes with comparatively high message latency under OSF/1 message
// passing.
func IntelParagon() *Profile {
	return &Profile{
		Name:       "Intel Paragon",
		FlopTime:   paragonFlopTime,
		LatencySec: 1.2e-4,
		ByteSec:    1.1e-7,
		CopySec:    5.5e-8,
		WordSize:   8,
		IOByteSec:  6.75e-6,
		IOFixedSec: 0.14,
	}
}

// GoHost is a profile for running the library for real results rather than
// paper-figure reproduction: compute is charged at a nominal modern rate
// and communication is nearly free (shared memory).
func GoHost() *Profile {
	return &Profile{
		Name:       "Go host",
		FlopTime:   1.0 / 1.0e9,
		LatencySec: 1.0e-6,
		ByteSec:    1.0e-10,
		CopySec:    1.0e-10,
		WordSize:   8,
		IOByteSec:  1.0e-9,
		IOFixedSec: 0.001,
	}
}

var (
	registryMu sync.RWMutex
	registry   = map[string]func() *Profile{
		"t3e":     CrayT3E,
		"t3d":     CrayT3D,
		"paragon": IntelParagon,
		"gohost":  GoHost,
	}
)

// Register adds a named profile constructor to the lookup table used by
// ByName. Registering an existing key replaces it.
func Register(key string, ctor func() *Profile) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[key] = ctor
}

// ByName returns a fresh profile for a registry key ("t3e", "t3d",
// "paragon", "gohost", or any key added via Register).
func ByName(key string) (*Profile, error) {
	registryMu.RLock()
	ctor, ok := registry[key]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("machine: unknown machine %q (known: %v)", key, Names())
	}
	return ctor(), nil
}

// Names returns the sorted registry keys.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	keys := make([]string, 0, len(registry))
	for k := range registry {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PaperTrio returns the three machines of the paper's evaluation in the
// order used by Figure 2: T3E, T3D, Paragon.
func PaperTrio() []*Profile {
	return []*Profile{CrayT3E(), CrayT3D(), IntelParagon()}
}
