package machine

import (
	"math"
	"strings"
	"testing"
)

func TestProfilesValid(t *testing.T) {
	for _, p := range append(PaperTrio(), GoHost()) {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Profile)
	}{
		{"empty name", func(p *Profile) { p.Name = "" }},
		{"zero flop time", func(p *Profile) { p.FlopTime = 0 }},
		{"negative latency", func(p *Profile) { p.LatencySec = -1 }},
		{"negative byte cost", func(p *Profile) { p.ByteSec = -1 }},
		{"negative copy cost", func(p *Profile) { p.CopySec = -1 }},
		{"zero word size", func(p *Profile) { p.WordSize = 0 }},
		{"negative io byte", func(p *Profile) { p.IOByteSec = -1 }},
		{"negative io fixed", func(p *Profile) { p.IOFixedSec = -1 }},
	}
	for _, c := range cases {
		p := CrayT3E()
		c.mod(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad profile", c.name)
		}
	}
	var nilp *Profile
	if err := nilp.Validate(); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestT3EPaperParameters(t *testing.T) {
	// Section 4.3 of the paper.
	p := CrayT3E()
	if p.LatencySec != 5.2e-5 {
		t.Errorf("L = %g, want 5.2e-5", p.LatencySec)
	}
	if p.ByteSec != 2.47e-8 {
		t.Errorf("G = %g, want 2.47e-8", p.ByteSec)
	}
	if p.CopySec != 2.04e-8 {
		t.Errorf("H = %g, want 2.04e-8", p.CopySec)
	}
	if p.WordSize != 8 {
		t.Errorf("W = %d, want 8", p.WordSize)
	}
}

func TestRelativeMachineSpeeds(t *testing.T) {
	// The paper: T3D just under 2x, T3E ~10x faster than the Paragon.
	paragon, t3d, t3e := IntelParagon(), CrayT3D(), CrayT3E()
	rT3D := paragon.FlopTime / t3d.FlopTime
	rT3E := paragon.FlopTime / t3e.FlopTime
	if rT3D < 1.5 || rT3D > 2.0 {
		t.Errorf("T3D/Paragon speed ratio = %.2f, want just under 2", rT3D)
	}
	if math.Abs(rT3E-10) > 1 {
		t.Errorf("T3E/Paragon speed ratio = %.2f, want ~10", rT3E)
	}
}

func TestCommTime(t *testing.T) {
	p := CrayT3E()
	// One message, 1000 bytes, 500 copied.
	got := p.CommTime(1, 1000, 500)
	want := 5.2e-5 + 2.47e-8*1000 + 2.04e-8*500
	if math.Abs(got-want) > 1e-18 {
		t.Errorf("CommTime = %g, want %g", got, want)
	}
	if p.CommTime(0, 0, 0) != 0 {
		t.Error("zero communication should cost zero")
	}
}

func TestComputeTime(t *testing.T) {
	p := CrayT3E()
	if got := p.ComputeTime(0); got != 0 {
		t.Errorf("ComputeTime(0) = %g", got)
	}
	one := p.ComputeTime(1)
	if got := p.ComputeTime(1e6); math.Abs(got-one*1e6)/got > 1e-12 {
		t.Errorf("ComputeTime not linear: %g vs %g", got, one*1e6)
	}
}

func TestIOTime(t *testing.T) {
	p := IntelParagon()
	if got := p.IOTime(0); got != p.IOFixedSec {
		t.Errorf("IOTime(0) = %g, want fixed %g", got, p.IOFixedSec)
	}
	if p.IOTime(1000) <= p.IOTime(0) {
		t.Error("IOTime must grow with bytes")
	}
}

func TestByName(t *testing.T) {
	for _, key := range []string{"t3e", "t3d", "paragon", "gohost"} {
		p, err := ByName(key)
		if err != nil {
			t.Errorf("ByName(%q): %v", key, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("ByName(%q): invalid profile: %v", key, err)
		}
	}
	if _, err := ByName("connection-machine"); err == nil {
		t.Error("unknown machine accepted")
	} else if !strings.Contains(err.Error(), "unknown machine") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestRegister(t *testing.T) {
	Register("testbox", func() *Profile {
		p := GoHost()
		p.Name = "Test Box"
		return p
	})
	p, err := ByName("testbox")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "Test Box" {
		t.Errorf("got %q", p.Name)
	}
	names := Names()
	found := false
	for _, n := range names {
		found = found || n == "testbox"
	}
	if !found {
		t.Errorf("Names() = %v missing testbox", names)
	}
}

func TestPaperTrioOrder(t *testing.T) {
	trio := PaperTrio()
	if len(trio) != 3 {
		t.Fatalf("PaperTrio returned %d machines", len(trio))
	}
	if trio[0].Name != "Cray T3E" || trio[1].Name != "Cray T3D" || trio[2].Name != "Intel Paragon" {
		t.Errorf("unexpected order: %v %v %v", trio[0], trio[1], trio[2])
	}
	// Figure 2 ordering: each machine strictly faster than the next.
	if !(trio[0].FlopTime < trio[1].FlopTime && trio[1].FlopTime < trio[2].FlopTime) {
		t.Error("machines not ordered fastest to slowest")
	}
}

func TestStringer(t *testing.T) {
	if got := CrayT3E().String(); got != "Cray T3E" {
		t.Errorf("String() = %q", got)
	}
}
