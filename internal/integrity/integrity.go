// Package integrity is the store-scrubbing subsystem: a background
// auditor that re-verifies every artifact in the content-addressed
// store at a configurable pace, moves failures into quarantine (never
// silently deletes — the corrupt bytes stay on disk for forensics), and
// triggers recompute repair through the scheduler so quarantined
// results, records and checkpoints are regenerated bit-identically by
// the deterministic numerics.
//
// The scrubber is deliberately an auditor, not a client: it reads
// through the store backend directly, so its sweep does not pollute the
// serving path's hit/miss counters or trip the I/O breaker, and a pass
// over a cold store costs exactly the bytes it reads, paced by the
// byte-rate budget.
//
// Repair resolution uses the spec manifests the scheduler writes after
// every successful execution (store.SpecManifest): a quarantined result
// resolves to its spec by content hash directly; a quarantined record
// or checkpoint by scanning manifests for the matching physics-prefix
// hash. Kinds with no recompute path (manifests themselves, S-R
// matrices) are quarantine-only — both are rebuilt on demand by their
// producers.
package integrity

import (
	"context"
	"path"
	"strings"
	"sync"
	"time"

	"airshed/internal/resilience"
	"airshed/internal/store"
)

// Repairer regenerates the artifacts of one spec by recomputation.
// *sched.Scheduler implements it: Repair decodes the manifest's spec
// JSON, force-enqueues a cold recompute (bypassing every stored fast
// path) and blocks until it finishes.
type Repairer interface {
	Repair(ctx context.Context, specJSON []byte) error
}

// Options configures a Scrubber.
type Options struct {
	// Store is the artifact store to scrub. Required.
	Store *store.Store
	// Interval is the idle period between scrub passes (the
	// -scrub-interval flag). 0 takes the 5-minute default; a negative
	// interval disables the background loop (passes only run when
	// driven explicitly via Pass).
	Interval time.Duration
	// RateBytesPerSec paces the pass: after each artifact the scrubber
	// sleeps size/rate, so a pass over a large store trickles along
	// instead of monopolising disk bandwidth. 0 means unpaced.
	RateBytesPerSec int64
	// Repair, when non-nil, regenerates quarantined results, records
	// and checkpoints by recomputation. Nil means quarantine-only.
	Repair Repairer
	// RepairTimeout bounds each blocking repair call (default 10m).
	RepairTimeout time.Duration
	// Logf, when non-nil, receives one line per quarantine and repair
	// outcome (log.Printf-shaped).
	Logf func(format string, args ...any)
}

// Counters are the scrubber's cumulative metrics.
type Counters struct {
	// Passes is the number of completed scrub passes.
	Passes uint64
	// Artifacts is the number of artifacts verified across all passes
	// (airshedd_scrub_artifacts_total).
	Artifacts uint64
	// Quarantined is the number of artifacts this scrubber's own
	// verification failed and moved to quarantine. (The store's
	// Counters.Quarantined also counts read-path quarantines.)
	Quarantined uint64
	// Repairs and RepairFailures count recompute-repair outcomes.
	Repairs        uint64
	RepairFailures uint64
	// Skipped counts artifacts a pass could not read (eviction races,
	// transient I/O failures, injected store.scrub faults) — skipped,
	// never quarantined, and retried on the next pass.
	Skipped uint64
	// LastPass is the completion time of the most recent pass (zero
	// before the first completes); LastPassAgeSeconds its age at
	// snapshot time (-1 before the first pass) — the /healthz scrub
	// freshness signal.
	LastPass           time.Time
	LastPassAgeSeconds float64
}

// Scrubber is the background store auditor. Create with New, start the
// background loop with Start, stop with Close; Pass runs one synchronous
// pass regardless of the loop.
type Scrubber struct {
	opts Options

	mu       sync.Mutex
	counters Counters
	lastPass time.Time

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New creates a Scrubber over the store.
func New(opts Options) *Scrubber {
	if opts.Interval == 0 {
		opts.Interval = 5 * time.Minute
	}
	if opts.RepairTimeout <= 0 {
		opts.RepairTimeout = 10 * time.Minute
	}
	return &Scrubber{opts: opts, stop: make(chan struct{})}
}

// Start launches the background pass loop: one pass immediately, then
// one per interval until Close. No-op when the interval is negative.
func (sc *Scrubber) Start() {
	if sc.opts.Interval < 0 {
		return
	}
	sc.wg.Add(1)
	go func() {
		defer sc.wg.Done()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-sc.stop
			cancel()
		}()
		for {
			sc.Pass(ctx)
			select {
			case <-sc.stop:
				return
			case <-time.After(sc.opts.Interval):
			}
		}
	}()
}

// Close stops the background loop and waits for an in-flight pass to
// wind down (its context is cancelled, so rate-limit sleeps and repair
// waits return promptly).
func (sc *Scrubber) Close() {
	sc.once.Do(func() { close(sc.stop) })
	sc.wg.Wait()
}

// Counters snapshots the metrics.
func (sc *Scrubber) Counters() Counters {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	c := sc.counters
	c.LastPass = sc.lastPass
	c.LastPassAgeSeconds = -1
	if !sc.lastPass.IsZero() {
		c.LastPassAgeSeconds = time.Since(sc.lastPass).Seconds()
	}
	return c
}

// Pass runs one full scrub pass: every stored artifact is read through
// the backend, re-verified (framing, checksums, full decompression) and
// quarantined + repaired on failure. Returns the number of artifacts
// verified. Unreadable artifacts are skipped, not quarantined: a read
// failure distinguishes "cannot fetch the bytes right now" (transient —
// eviction race, I/O hiccup, injected store.scrub fault) from "the
// bytes are provably rotten", and only the latter may quarantine.
func (sc *Scrubber) Pass(ctx context.Context) int {
	st := sc.opts.Store
	infos, err := st.ListBlobs()
	if err != nil {
		sc.logf("integrity: scrub pass aborted: list: %v", err)
		return 0
	}
	verified := 0
	repaired := make(map[string]bool) // spec hashes repaired this pass
	for _, info := range infos {
		if ctx.Err() != nil {
			return verified
		}
		sc.throttle(ctx, info.Size)
		if err := resilience.Fire(resilience.PointStoreScrub); err != nil {
			// Injected read fault: this artifact is unreadable this
			// pass. Healthy bytes must never land in quarantine, so the
			// fault maps to skip, exactly like a real I/O failure.
			sc.bump(func(c *Counters) { c.Skipped++ })
			continue
		}
		data, err := st.Backend().Get(info.Key)
		if err != nil {
			sc.bump(func(c *Counters) { c.Skipped++ })
			continue
		}
		verified++
		sc.bump(func(c *Counters) { c.Artifacts++ })
		if err := store.VerifyBlob(info.Key, data); err == nil {
			continue
		}
		if qerr := st.QuarantineBlob(info.Key); qerr != nil {
			sc.logf("integrity: quarantine %s failed: %v", info.Key, qerr)
			continue
		}
		sc.bump(func(c *Counters) { c.Quarantined++ })
		sc.logf("integrity: quarantined %s (checksum/decode verification failed)", info.Key)
		sc.repair(ctx, info.Key, repaired)
	}
	sc.mu.Lock()
	sc.counters.Passes++
	sc.lastPass = time.Now()
	sc.mu.Unlock()
	return verified
}

// throttle charges one artifact's bytes against the pass's rate budget.
func (sc *Scrubber) throttle(ctx context.Context, size int64) {
	if sc.opts.RateBytesPerSec <= 0 || size <= 0 {
		return
	}
	d := time.Duration(float64(size) / float64(sc.opts.RateBytesPerSec) * float64(time.Second))
	_ = resilience.SleepCtx(ctx, d)
}

// repair resolves a quarantined artifact back to the spec that produced
// it and triggers a blocking recompute. One repair per spec per pass: a
// run whose every artifact rotted is rebuilt by a single cold recompute.
func (sc *Scrubber) repair(ctx context.Context, key string, repaired map[string]bool) {
	if sc.opts.Repair == nil {
		return
	}
	kind, name, err := store.SplitKey(key)
	if err != nil {
		return
	}
	hash := strings.TrimSuffix(name, path.Ext(name))
	var m *store.SpecManifest
	switch kind {
	case store.KindResult:
		m, _ = sc.opts.Store.GetManifest(hash)
	case store.KindRecord, store.KindCheckpoint:
		m = sc.manifestForPrefix(hash)
	default:
		// Manifests and S-R matrices have no recompute path: the
		// scheduler rewrites manifests after every execution, the S-R
		// service rebuilds matrices on demand. Quarantine-only.
		return
	}
	if m == nil {
		sc.logf("integrity: no manifest resolves %s; quarantined without repair", key)
		return
	}
	specHash := sc.specHashFor(kind, hash, m)
	if repaired[specHash] {
		return
	}
	repaired[specHash] = true
	rctx, cancel := context.WithTimeout(ctx, sc.opts.RepairTimeout)
	defer cancel()
	if err := sc.opts.Repair.Repair(rctx, m.Spec); err != nil {
		sc.bump(func(c *Counters) { c.RepairFailures++ })
		sc.logf("integrity: repair for %s failed: %v", key, err)
		return
	}
	sc.bump(func(c *Counters) { c.Repairs++ })
	sc.logf("integrity: repaired %s by recompute", key)
}

// manifestForPrefix finds a manifest whose physics-prefix hashes
// contain ph — the inverse mapping for quarantined records and
// checkpoints, which are keyed by prefix hash rather than spec hash.
func (sc *Scrubber) manifestForPrefix(ph string) *store.SpecManifest {
	infos, err := sc.opts.Store.ListBlobs()
	if err != nil {
		return nil
	}
	for _, info := range infos {
		kind, name, err := store.SplitKey(info.Key)
		if err != nil || kind != store.KindSpec {
			continue
		}
		m, ok := sc.opts.Store.GetManifest(strings.TrimSuffix(name, path.Ext(name)))
		if !ok {
			continue
		}
		for _, h := range m.PrefixHashes {
			if h == ph {
				return m
			}
		}
	}
	return nil
}

// specHashFor keys the per-pass repair dedup set: the spec hash for
// results (it IS the artifact name), the manifest's identity otherwise.
func (sc *Scrubber) specHashFor(kind, hash string, m *store.SpecManifest) string {
	if kind == store.KindResult {
		return hash
	}
	return string(m.Spec)
}

func (sc *Scrubber) bump(f func(*Counters)) {
	sc.mu.Lock()
	f(&sc.counters)
	sc.mu.Unlock()
}

func (sc *Scrubber) logf(format string, args ...any) {
	if sc.opts.Logf != nil {
		sc.opts.Logf(format, args...)
	}
}
