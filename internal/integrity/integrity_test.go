package integrity

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"airshed/internal/core"
	"airshed/internal/resilience"
	"airshed/internal/scenario"
	"airshed/internal/sched"
	"airshed/internal/store"
)

func chaosSpec() scenario.Spec {
	return scenario.Spec{Dataset: "mini", Machine: "t3e", Nodes: 2, Hours: 2}
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func newSched(t *testing.T, st *store.Store) *sched.Scheduler {
	t.Helper()
	s := sched.New(sched.Options{Workers: 2, GoParallel: true, Store: st})
	t.Cleanup(func() {
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s
}

func runJob(t *testing.T, s *sched.Scheduler, spec scenario.Spec) sched.JobStatus {
	t.Helper()
	sub, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	fin, err := s.Await(ctx, sub.ID)
	if err != nil {
		t.Fatalf("Await(%s): %v", sub.ID, err)
	}
	if fin.State != sched.Done {
		t.Fatalf("job %s state = %v (err %v)", sub.ID, fin.State, fin.Err)
	}
	return fin
}

// flipByte corrupts one byte of a stored artifact on disk, behind the
// store's back, and returns the corrupted bytes for later comparison
// against the quarantined copy.
func flipByte(t *testing.T, dir, key string, rng *rand.Rand) []byte {
	t.Helper()
	p := filepath.Join(dir, filepath.FromSlash(key))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("read %s: %v", key, err)
	}
	data[rng.Intn(len(data))] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatalf("rewrite %s: %v", key, err)
	}
	return data
}

// checkpointKeys lists the stored checkpoint keys in listing order.
func checkpointKeys(t *testing.T, st *store.Store) []string {
	t.Helper()
	infos, err := st.ListBlobs()
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, info := range infos {
		kind, _, err := store.SplitKey(info.Key)
		if err == nil && kind == store.KindCheckpoint {
			keys = append(keys, info.Key)
		}
	}
	if len(keys) == 0 {
		t.Fatal("run persisted no checkpoints")
	}
	return keys
}

// TestCorruptionChaosRepair is the end-to-end integrity drill: flip one
// byte in a stored result and in a stored checkpoint, run a scrub pass,
// and assert the rot is quarantined (never deleted), repaired by
// recompute, and that the repaired artifacts are bit-identical to the
// uncorrupted originals. Three seeds vary which checkpoint rots and
// where the flipped byte lands.
func TestCorruptionChaosRepair(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			st := openStore(t, dir)
			s := newSched(t, st)

			base := runJob(t, s, chaosSpec())
			baseFinal := append([]float64(nil), base.Result.Final...)
			basePeaks := append([]float64(nil), base.Result.HourlyPeakO3...)

			ckKeys := checkpointKeys(t, st)
			ckKey := ckKeys[rng.Intn(len(ckKeys))]
			origCk, err := st.Backend().Get(ckKey)
			if err != nil {
				t.Fatalf("read pristine checkpoint: %v", err)
			}
			resKey := "results/" + base.Hash + ".res"

			corruptRes := flipByte(t, dir, resKey, rng)
			flipByte(t, dir, ckKey, rng)

			sc := New(Options{Store: st, Interval: -1, Repair: s, RepairTimeout: 2 * time.Minute, Logf: t.Logf})
			sc.Pass(context.Background())
			c := sc.Counters()

			// The result is scanned first and its repair is a full cold
			// recompute, which rewrites every checkpoint — so by the time
			// the pass reaches the corrupted checkpoint it is healthy
			// again. Exactly one quarantine, one repair.
			if c.Quarantined != 1 {
				t.Errorf("Quarantined = %d, want 1", c.Quarantined)
			}
			if c.Repairs != 1 || c.RepairFailures != 0 {
				t.Errorf("Repairs = %d RepairFailures = %d, want 1/0", c.Repairs, c.RepairFailures)
			}

			// Quarantine preserves the rotten bytes — corruption is
			// evidence, never silently deleted.
			qdata, err := os.ReadFile(filepath.Join(dir, "quarantine", filepath.FromSlash(resKey)))
			if err != nil {
				t.Fatalf("quarantined result missing: %v", err)
			}
			if !bytes.Equal(qdata, corruptRes) {
				t.Error("quarantined result bytes differ from the corrupted original")
			}

			// The repaired result is bit-identical to the baseline.
			res, ok := st.GetResult(base.Hash)
			if !ok {
				t.Fatal("repaired result missing from store")
			}
			if !reflect.DeepEqual(res.Final, baseFinal) {
				t.Error("repaired Final differs from baseline (determinism broken)")
			}
			if !reflect.DeepEqual(res.HourlyPeakO3, basePeaks) {
				t.Error("repaired HourlyPeakO3 differs from baseline")
			}

			// The checkpoint rewritten by the repair is bit-identical too.
			gotCk, err := st.Backend().Get(ckKey)
			if err != nil {
				t.Fatalf("read repaired checkpoint: %v", err)
			}
			if !bytes.Equal(gotCk, origCk) {
				t.Error("repaired checkpoint bytes differ from pristine original")
			}

			// A second pass over the healthy store is quiet.
			sc.Pass(context.Background())
			if c2 := sc.Counters(); c2.Quarantined != c.Quarantined || c2.Repairs != c.Repairs {
				t.Errorf("second pass not quiet: quarantined %d->%d repairs %d->%d",
					c.Quarantined, c2.Quarantined, c.Repairs, c2.Repairs)
			}
		})
	}
}

// TestCheckpointRepairViaManifest corrupts only a checkpoint — whose
// name is a physics-prefix hash, not a spec hash — and asserts the
// scrubber resolves it back to its producing spec through the stored
// manifests, repairs it, and that warm starts from the repaired
// artifacts still reproduce a cold run bit for bit.
func TestCheckpointRepairViaManifest(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()
	st := openStore(t, dir)
	s := newSched(t, st)

	runJob(t, s, chaosSpec())

	ckKeys := checkpointKeys(t, st)
	ckKey := ckKeys[rng.Intn(len(ckKeys))]
	origCk, err := st.Backend().Get(ckKey)
	if err != nil {
		t.Fatal(err)
	}
	corruptCk := flipByte(t, dir, ckKey, rng)

	sc := New(Options{Store: st, Interval: -1, Repair: s, RepairTimeout: 2 * time.Minute, Logf: t.Logf})
	sc.Pass(context.Background())
	c := sc.Counters()
	if c.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", c.Quarantined)
	}
	if c.Repairs != 1 || c.RepairFailures != 0 {
		t.Errorf("Repairs = %d RepairFailures = %d, want 1/0", c.Repairs, c.RepairFailures)
	}

	qdata, err := os.ReadFile(filepath.Join(dir, "quarantine", filepath.FromSlash(ckKey)))
	if err != nil {
		t.Fatalf("quarantined checkpoint missing: %v", err)
	}
	if !bytes.Equal(qdata, corruptCk) {
		t.Error("quarantined checkpoint bytes differ from the corrupted original")
	}
	gotCk, err := st.Backend().Get(ckKey)
	if err != nil {
		t.Fatalf("read repaired checkpoint: %v", err)
	}
	if !bytes.Equal(gotCk, origCk) {
		t.Error("repaired checkpoint differs from pristine original")
	}

	// Warm-start usability: a longer run resumes from the repaired
	// checkpoint and matches a cold run exactly.
	longer := chaosSpec()
	longer.Hours = 3
	warm := runJob(t, s, longer)
	if warm.WarmStartHour == 0 {
		t.Error("longer run did not warm-start from the repaired artifacts")
	}

	coldSched := newSched(t, openStore(t, t.TempDir()))
	cold := runJob(t, coldSched, longer)
	if !reflect.DeepEqual(warm.Result.Final, cold.Result.Final) {
		t.Error("warm-started result from repaired checkpoint differs from cold run")
	}
}

// TestScrubFaultSkipsNeverQuarantines fires the store.scrub fault point
// on every artifact: an unreadable artifact must be skipped and retried
// next pass, never quarantined — healthy bytes stay served.
func TestScrubFaultSkipsNeverQuarantines(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	if err := st.PutResult("aa11", &core.Result{Final: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}

	inj := resilience.New(9).Set(resilience.PointStoreScrub, 1)
	resilience.Enable(inj)
	sc := New(Options{Store: st, Interval: -1})
	sc.Pass(context.Background())
	resilience.Disable()

	c := sc.Counters()
	if c.Skipped == 0 {
		t.Error("injected read faults produced no skips")
	}
	if c.Quarantined != 0 || c.Artifacts != 0 {
		t.Errorf("faulted pass quarantined %d / verified %d artifacts, want 0/0", c.Quarantined, c.Artifacts)
	}
	if _, ok := st.GetResult("aa11"); !ok {
		t.Error("healthy artifact lost after faulted scrub pass")
	}

	// With the faults gone the next pass verifies everything.
	sc.Pass(context.Background())
	if c := sc.Counters(); c.Artifacts == 0 || c.Quarantined != 0 {
		t.Errorf("clean pass: Artifacts = %d Quarantined = %d, want >0/0", c.Artifacts, c.Quarantined)
	}
}
