package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"time"
)

// Error classification: the retry machinery only re-executes failures
// that a retry can plausibly cure. The rules, in precedence order:
//
//  1. cancellation and deadline expiry are permanent — retrying against
//     a dead context only delays the inevitable;
//  2. an explicit mark (MarkTransient / MarkPermanent) wins;
//  3. errors that declare themselves via a Transient() bool method
//     (including InjectedError) are believed;
//  4. OS-level timeouts are transient;
//  5. everything else is permanent — unknown failures (bad specs, logic
//     errors, panics) must surface, not spin.

// classified wraps an error with an explicit class mark.
type classified struct {
	err       error
	transient bool
}

func (c *classified) Error() string { return c.err.Error() }
func (c *classified) Unwrap() error { return c.err }

// Transient reports the explicit mark.
func (c *classified) Transient() bool { return c.transient }

// MarkTransient marks err retryable. nil stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, transient: true}
}

// MarkPermanent marks err non-retryable. nil stays nil.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, transient: false}
}

// transienter is the self-classification interface (errors carry their
// own retry semantics through wrapping).
type transienter interface {
	Transient() bool
}

// CorruptionError marks a decode/checksum failure of data that was read
// back intact at the transport level: the bytes arrived, and they are
// wrong. Retrying re-reads the same bad bytes, so corruption is
// permanent — the caller must fall through to recompute (and quarantine
// the artifact) instead of burning the backoff budget first.
type CorruptionError struct{ err error }

func (e *CorruptionError) Error() string { return "corrupt: " + e.err.Error() }
func (e *CorruptionError) Unwrap() error { return e.err }

// Transient reports false: re-reading corrupt bytes cannot cure them.
func (e *CorruptionError) Transient() bool { return false }

// MarkCorrupt wraps err as a CorruptionError (permanent). nil stays nil.
func MarkCorrupt(err error) error {
	if err == nil {
		return nil
	}
	return &CorruptionError{err: err}
}

// IsCorrupt reports whether err's chain contains a CorruptionError.
func IsCorrupt(err error) bool {
	var c *CorruptionError
	return errors.As(err, &c)
}

// netTimeoutError wraps a transport-level timeout as transient with the
// underlying chain deliberately severed (no Unwrap): Go's HTTP client
// reports its own per-request timeout via context.DeadlineExceeded,
// which rule 1 would otherwise read as the caller's context dying and
// refuse to retry. A genuinely dead caller context still stops the
// retry loop — SleepCtx aborts the backoff wait.
type netTimeoutError struct{ err error }

func (e *netTimeoutError) Error() string   { return e.err.Error() }
func (e *netTimeoutError) Transient() bool { return true }
func (e *netTimeoutError) Timeout() bool   { return true }

// ClassifyNetErr marks err transient when it looks like a recoverable
// network-transport failure — a timeout, a connection reset, refused or
// torn mid-response — and returns it unchanged otherwise. Errors that
// already classify themselves (a Transient() method anywhere in the
// chain, including an earlier Mark*) are left alone: the explicit mark
// wins. It is the classification rule the fleet's HTTP edges (shard
// dispatch, the blob backend, agent heartbeats) share: the peer being
// momentarily unreachable must cost a retry, never correctness.
func ClassifyNetErr(err error) error {
	if err == nil {
		return nil
	}
	var t transienter
	if errors.As(err, &t) {
		return err
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return &netTimeoutError{err: err}
	}
	switch {
	case errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.EOF):
		// io.EOF from an HTTP round trip is the server closing the
		// connection mid-exchange — the retryable shape of a restart.
		return MarkTransient(err)
	}
	return err
}

// IsTransient reports whether err should be retried.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t transienter
	if errors.As(err, &t) {
		return t.Transient()
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	return false
}

// RetryPolicy is a capped exponential backoff with deterministic jitter.
// The zero value means the defaults; WithDefaults resolves them.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (default 3; values < 1 mean 1 — no retries).
	MaxAttempts int
	// BaseDelay is the delay after the first failed attempt (default
	// 25ms); each further failure multiplies it by Multiplier (default
	// 2), capped at MaxDelay (default 2s).
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter is the fraction of the delay randomised away (0 = none):
	// the delay after attempt n is d*(1 - Jitter*u) for a deterministic
	// u in [0, 1) derived from (Seed, key, n), so retry schedules are
	// reproducible under a fixed seed yet decorrelated across jobs.
	// Out-of-range values clamp to [0, 1].
	Jitter float64
	// Seed drives the deterministic jitter.
	Seed uint64
}

// WithDefaults resolves zero fields to the documented defaults.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Delay returns the backoff before attempt+1, for the attempt-th failed
// attempt (1-based). key decorrelates concurrent jobs (e.g. a hash of
// the job identity).
func (p RetryPolicy) Delay(attempt int, key uint64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		u := float64(mix(p.Seed^mix(key^uint64(attempt)))>>11) / (1 << 53)
		d *= 1 - p.Jitter*u
	}
	return time.Duration(d)
}

// SleepCtx sleeps for d or until ctx is done, returning ctx's error in
// the latter case — the interruptible backoff wait (a Cancel during
// retry backoff lands here).
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Retry runs fn under the policy: transient failures are retried after
// the backoff delay, permanent failures and context expiry return
// immediately. It returns the number of attempts made and the final
// error (nil on success).
func Retry(ctx context.Context, p RetryPolicy, key uint64, fn func() error) (attempts int, err error) {
	p = p.WithDefaults()
	for {
		attempts++
		err = fn()
		if err == nil || !IsTransient(err) || attempts >= p.MaxAttempts {
			return attempts, err
		}
		if werr := SleepCtx(ctx, p.Delay(attempts, key)); werr != nil {
			return attempts, fmt.Errorf("resilience: retry abandoned after %d attempts: %w", attempts, werr)
		}
	}
}
