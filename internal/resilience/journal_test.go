package resilience

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func openJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal(%s): %v", path, err)
	}
	return j
}

func TestJournalAcceptDonePending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j := openJournal(t, path)
	defer j.Close()

	if err := j.Accept("j1", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("j2", []byte(`{"b":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Done("j1"); err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{"j2": []byte(`{"b":2}`)}
	if got := j.Pending(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Pending = %v, want %v", got, want)
	}
	// Done on unknown ids is a tolerated no-op.
	if err := j.Done("never-accepted"); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatalf("Len = %d, want 1", j.Len())
	}
}

func TestJournalSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j := openJournal(t, path)
	for _, id := range []string{"a", "b", "c"} {
		if err := j.Accept(id, []byte("spec-"+id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Done("b"); err != nil {
		t.Fatal(err)
	}
	// Simulate SIGKILL: no Close, just reopen the same path.
	j2 := openJournal(t, path)
	defer j2.Close()
	want := map[string][]byte{"a": []byte("spec-a"), "c": []byte("spec-c")}
	if got := j2.Pending(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Pending after reopen = %v, want %v", got, want)
	}
	// Compaction rewrote the file: a third open agrees.
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ReadJournal = %v, want %v", got, want)
	}
}

func TestJournalTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j := openJournal(t, path)
	if err := j.Accept("whole", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Append half a record: a crash mid-append.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(raw, 'A', 9, 0, 0, 0, 'x', 'y')
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := openJournal(t, path)
	defer j2.Close()
	if got := j2.Pending(); len(got) != 1 || string(got["whole"]) != "payload" {
		t.Fatalf("Pending after torn tail = %v, want only the whole record", got)
	}
	// Partial recovery is not silent: the dropped tail is surfaced.
	if j2.Warning() == nil {
		t.Fatal("torn tail recovered with a nil Warning")
	}
}

func TestJournalGarbageFileRecoversEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	j := openJournal(t, path)
	defer j.Close()
	if j.Len() != 0 {
		t.Fatalf("garbage journal has %d pending", j.Len())
	}
	// Dropping an unrecognisable file is loud, not silent.
	if j.Warning() == nil {
		t.Fatal("garbage journal recovered with a nil Warning")
	}
	// And it is usable afterwards.
	if err := j.Accept("x", []byte("y")); err != nil {
		t.Fatal(err)
	}
}

func TestJournalCleanFileHasNoWarning(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j := openJournal(t, path)
	if err := j.Accept("a", []byte("p")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2 := openJournal(t, path)
	defer j2.Close()
	if w := j2.Warning(); w != nil {
		t.Fatalf("clean journal reopened with Warning %v", w)
	}
}

func TestJournalCompactsWhenDrained(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j := openJournal(t, path)
	defer j.Close()
	// Each cycle is two appends; the journal compacts once 128 appends
	// have accumulated with nothing pending, so 64 cycles end compacted.
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("job-%03d", i)
		if err := j.Accept(id, []byte("p")); err != nil {
			t.Fatal(err)
		}
		if err := j.Done(id); err != nil {
			t.Fatal(err)
		}
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(len("AIRWAL01")) {
		t.Fatalf("drained journal is %d bytes, want compacted to the bare header", info.Size())
	}
}
