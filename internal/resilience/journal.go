package resilience

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Journal is the daemon's crash-recovery write-ahead log: every accepted
// job is appended (id + opaque payload, fsynced) before it can run, and
// marked done when it reaches a terminal state. After a SIGKILL the
// journal's pending set is exactly the accepted-but-unfinished work, and
// the daemon re-submits it on restart — in-flight compute is lost,
// accepted work is not.
//
// Format: an 8-byte magic header followed by CRC-framed records
//
//	'A' | u32 idLen | id | u32 payloadLen | payload | u32 crc
//	'D' | u32 idLen | id |                           u32 crc
//
// Appends are fsynced, so a record either survives whole or is a
// truncated tail; OpenJournal tolerates a torn tail (a crash mid-append)
// by dropping it, and compacts the file down to the pending set so the
// WAL stays small across restarts.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	pending map[string][]byte
	appends int
	closed  bool
}

const journalMagic = "AIRWAL01"

// journal record types.
const (
	recAccept = byte('A')
	recDone   = byte('D')
)

// maxJournalField bounds id and payload lengths (corruption guard).
const maxJournalField = 1 << 24

// OpenJournal opens (or creates) the journal at path, replays it into
// the pending set — dropping a torn tail — and compacts it.
func OpenJournal(path string) (*Journal, error) {
	pending, err := readJournalFile(path)
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, pending: pending}
	if err := j.compact(); err != nil {
		return nil, err
	}
	return j, nil
}

// ReadJournal reads the pending set of a journal file without opening it
// for writing (inspection; a missing file is an empty set).
func ReadJournal(path string) (map[string][]byte, error) {
	return readJournalFile(path)
}

// readJournalFile parses accepted-minus-done; torn tails are dropped.
func readJournalFile(path string) (map[string][]byte, error) {
	pending := make(map[string][]byte)
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return pending, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resilience: journal: %w", err)
	}
	if len(raw) < len(journalMagic) || string(raw[:len(journalMagic)]) != journalMagic {
		// Unrecognisable file: recover what we can, which is nothing.
		return pending, nil
	}
	r := bytes.NewReader(raw[len(journalMagic):])
	for {
		id, payload, typ, err := readRecord(r)
		if err != nil {
			// A torn or corrupt tail ends the replay; everything before
			// it was fsynced whole and stands.
			return pending, nil
		}
		switch typ {
		case recAccept:
			pending[id] = payload
		case recDone:
			delete(pending, id)
		}
	}
}

// readRecord parses one CRC-framed record.
func readRecord(r io.Reader) (id string, payload []byte, typ byte, err error) {
	var frame bytes.Buffer
	tr := io.TeeReader(r, &frame)
	var t [1]byte
	if _, err := io.ReadFull(tr, t[:]); err != nil {
		return "", nil, 0, err
	}
	typ = t[0]
	if typ != recAccept && typ != recDone {
		return "", nil, 0, fmt.Errorf("resilience: journal: bad record type %d", typ)
	}
	idb, err := readField(tr)
	if err != nil {
		return "", nil, 0, err
	}
	if typ == recAccept {
		if payload, err = readField(tr); err != nil {
			return "", nil, 0, err
		}
	}
	var crc uint32
	if err := binary.Read(r, binary.LittleEndian, &crc); err != nil {
		return "", nil, 0, err
	}
	if got := crc32.ChecksumIEEE(frame.Bytes()); got != crc {
		return "", nil, 0, fmt.Errorf("resilience: journal: record checksum mismatch")
	}
	return string(idb), payload, typ, nil
}

// readField reads a u32-length-prefixed byte field.
func readField(r io.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxJournalField {
		return nil, fmt.Errorf("resilience: journal: implausible field length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// appendRecord frames and writes one record to w.
func appendRecord(w io.Writer, typ byte, id string, payload []byte) error {
	var frame bytes.Buffer
	frame.WriteByte(typ)
	if err := binary.Write(&frame, binary.LittleEndian, uint32(len(id))); err != nil {
		return err
	}
	frame.WriteString(id)
	if typ == recAccept {
		if err := binary.Write(&frame, binary.LittleEndian, uint32(len(payload))); err != nil {
			return err
		}
		frame.Write(payload)
	}
	if err := binary.Write(&frame, binary.LittleEndian, crc32.ChecksumIEEE(frame.Bytes())); err != nil {
		return err
	}
	_, err := w.Write(frame.Bytes())
	return err
}

// compact rewrites the journal as magic + the pending accepts (atomic:
// temp file, fsync, rename) and reopens it for appending; j.mu held or
// journal not yet shared.
func (j *Journal) compact() error {
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, "tmp-wal-*")
	if err != nil {
		return fmt.Errorf("resilience: journal: %w", err)
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resilience: journal: %w", err)
	}
	if _, err := tmp.WriteString(journalMagic); err != nil {
		return fail(err)
	}
	ids := make([]string, 0, len(j.pending))
	for id := range j.pending {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := appendRecord(tmp, recAccept, id, j.pending[id]); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resilience: journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resilience: journal: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("resilience: journal: %w", err)
	}
	j.f = f
	j.appends = 0
	return nil
}

// Accept journals an accepted job: the record is on disk (fsynced)
// before Accept returns, so a crash after acceptance cannot lose it.
func (j *Journal) Accept(id string, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("resilience: journal closed")
	}
	if err := appendRecord(j.f, recAccept, id, payload); err != nil {
		return fmt.Errorf("resilience: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("resilience: journal: %w", err)
	}
	j.pending[id] = append([]byte(nil), payload...)
	j.appends++
	return nil
}

// Done journals a job's terminal state. Unknown ids are a no-op (the
// entry was already retired, e.g. by a restart's re-submission pass).
// When the pending set empties after many appends the journal compacts
// back to the bare header.
func (j *Journal) Done(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("resilience: journal closed")
	}
	if _, ok := j.pending[id]; !ok {
		return nil
	}
	if err := appendRecord(j.f, recDone, id, nil); err != nil {
		return fmt.Errorf("resilience: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("resilience: journal: %w", err)
	}
	delete(j.pending, id)
	j.appends++
	if len(j.pending) == 0 && j.appends >= 128 {
		return j.compact()
	}
	return nil
}

// Pending snapshots the accepted-but-unfinished set (id -> payload).
func (j *Journal) Pending() map[string][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string][]byte, len(j.pending))
	for id, p := range j.pending {
		out[id] = append([]byte(nil), p...)
	}
	return out
}

// Len returns the pending count.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.pending)
}

// Path returns the journal file location.
func (j *Journal) Path() string { return j.path }

// Close releases the file handle; the journal stays on disk.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}
