package resilience

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Journal is the daemon's crash-recovery write-ahead log: every accepted
// job is appended (id + opaque payload, fsynced) before it can run, and
// marked done when it reaches a terminal state. After a SIGKILL the
// journal's pending set is exactly the accepted-but-unfinished work, and
// the daemon re-submits it on restart — in-flight compute is lost,
// accepted work is not.
//
// Format: an 8-byte magic header followed by CRC-framed records
//
//	'A' | u32 idLen | id | u32 payloadLen | payload | u32 crc
//	'D' | u32 idLen | id |                           u32 crc
//
// Appends are fsynced, so a record either survives whole or is a
// truncated tail; OpenJournal tolerates a torn tail (a crash mid-append)
// by dropping it, and compacts the file down to the pending set so the
// WAL stays small across restarts.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	pending map[string][]byte
	warn    error
	appends int
	closed  bool
}

const journalMagic = "AIRWAL01"

// journal record types.
const (
	recAccept = byte('A')
	recDone   = byte('D')
)

// maxJournalField bounds id and payload lengths (corruption guard).
const maxJournalField = 1 << 24

// OpenJournal opens (or creates) the journal at path, replays it into
// the pending set — dropping a torn tail — and compacts it. When the
// replay was partial (bad header, corrupt or torn records dropped) the
// journal opens anyway and Warning reports what was lost, so operators
// can tell recovery was incomplete.
func OpenJournal(path string) (*Journal, error) {
	pending, warn, err := readJournalFile(path)
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, pending: pending, warn: warn}
	if err := j.compact(); err != nil {
		return nil, err
	}
	return j, nil
}

// ReadJournal reads the pending set of a journal file without opening it
// for writing (inspection; a missing file is an empty set).
func ReadJournal(path string) (map[string][]byte, error) {
	pending, _, err := readJournalFile(path)
	return pending, err
}

// readJournalFile parses accepted-minus-done. A clean end-of-file
// returns a nil warn; an unrecognisable header or a corrupt/torn record
// (which ends the replay — everything before it was fsynced whole and
// stands) returns the recovered prefix plus a non-nil warn describing
// what was dropped.
func readJournalFile(path string) (pending map[string][]byte, warn, err error) {
	pending = make(map[string][]byte)
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return pending, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("resilience: journal: %w", err)
	}
	if len(raw) < len(journalMagic) || string(raw[:len(journalMagic)]) != journalMagic {
		warn = fmt.Errorf("resilience: journal %s: unrecognisable header, ignoring %d bytes (pending jobs, if any, are lost)", path, len(raw))
		return pending, warn, nil
	}
	r := bytes.NewReader(raw[len(journalMagic):])
	for {
		left := r.Len()
		id, payload, typ, rerr := readRecord(r)
		if errors.Is(rerr, io.EOF) {
			return pending, nil, nil // clean record boundary
		}
		if rerr != nil {
			warn = fmt.Errorf("resilience: journal %s: dropped %d trailing bytes after %d recovered entries: %w", path, left, len(pending), rerr)
			return pending, warn, nil
		}
		switch typ {
		case recAccept:
			pending[id] = payload
		case recDone:
			delete(pending, id)
		}
	}
}

// readRecord parses one CRC-framed record. It returns io.EOF only at a
// clean record boundary (zero bytes left); EOF inside a record — a torn
// tail — surfaces as io.ErrUnexpectedEOF so callers can tell the two
// apart.
func readRecord(r io.Reader) (id string, payload []byte, typ byte, err error) {
	var frame bytes.Buffer
	tr := io.TeeReader(r, &frame)
	var t [1]byte
	if _, err := io.ReadFull(tr, t[:]); err != nil {
		return "", nil, 0, err
	}
	typ = t[0]
	if typ != recAccept && typ != recDone {
		return "", nil, 0, fmt.Errorf("resilience: journal: bad record type %d", typ)
	}
	idb, err := readField(tr)
	if err != nil {
		return "", nil, 0, noCleanEOF(err)
	}
	if typ == recAccept {
		if payload, err = readField(tr); err != nil {
			return "", nil, 0, noCleanEOF(err)
		}
	}
	var crc uint32
	if err := binary.Read(r, binary.LittleEndian, &crc); err != nil {
		return "", nil, 0, noCleanEOF(err)
	}
	if got := crc32.ChecksumIEEE(frame.Bytes()); got != crc {
		return "", nil, 0, fmt.Errorf("resilience: journal: record checksum mismatch")
	}
	return string(idb), payload, typ, nil
}

// noCleanEOF converts io.EOF mid-record to io.ErrUnexpectedEOF; a bare
// EOF means "clean boundary" to readRecord's callers.
func noCleanEOF(err error) error {
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// readField reads a u32-length-prefixed byte field.
func readField(r io.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxJournalField {
		return nil, fmt.Errorf("resilience: journal: implausible field length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// appendRecord frames and writes one record to w.
func appendRecord(w io.Writer, typ byte, id string, payload []byte) error {
	var frame bytes.Buffer
	frame.WriteByte(typ)
	if err := binary.Write(&frame, binary.LittleEndian, uint32(len(id))); err != nil {
		return err
	}
	frame.WriteString(id)
	if typ == recAccept {
		if err := binary.Write(&frame, binary.LittleEndian, uint32(len(payload))); err != nil {
			return err
		}
		frame.Write(payload)
	}
	if err := binary.Write(&frame, binary.LittleEndian, crc32.ChecksumIEEE(frame.Bytes())); err != nil {
		return err
	}
	_, err := w.Write(frame.Bytes())
	return err
}

// compact rewrites the journal as magic + the pending accepts (atomic:
// temp file, fsync, rename) and reopens it for appending; j.mu held or
// journal not yet shared.
func (j *Journal) compact() error {
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, "tmp-wal-*")
	if err != nil {
		return fmt.Errorf("resilience: journal: %w", err)
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resilience: journal: %w", err)
	}
	if _, err := tmp.WriteString(journalMagic); err != nil {
		return fail(err)
	}
	ids := make([]string, 0, len(j.pending))
	for id := range j.pending {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := appendRecord(tmp, recAccept, id, j.pending[id]); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resilience: journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resilience: journal: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("resilience: journal: %w", err)
	}
	j.f = f
	j.appends = 0
	return nil
}

// Accept journals an accepted job: the record is on disk (fsynced)
// before Accept returns, so a crash after acceptance cannot lose it.
func (j *Journal) Accept(id string, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("resilience: journal closed")
	}
	if err := appendRecord(j.f, recAccept, id, payload); err != nil {
		return fmt.Errorf("resilience: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("resilience: journal: %w", err)
	}
	j.pending[id] = append([]byte(nil), payload...)
	j.appends++
	return nil
}

// Done journals a job's terminal state. Unknown ids are a no-op (the
// entry was already retired, e.g. by a restart's re-submission pass).
// When the pending set empties after many appends the journal compacts
// back to the bare header.
func (j *Journal) Done(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("resilience: journal closed")
	}
	if _, ok := j.pending[id]; !ok {
		return nil
	}
	if err := appendRecord(j.f, recDone, id, nil); err != nil {
		return fmt.Errorf("resilience: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("resilience: journal: %w", err)
	}
	delete(j.pending, id)
	j.appends++
	if len(j.pending) == 0 && j.appends >= 128 {
		return j.compact()
	}
	return nil
}

// Pending snapshots the accepted-but-unfinished set (id -> payload).
func (j *Journal) Pending() map[string][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string][]byte, len(j.pending))
	for id, p := range j.pending {
		out[id] = append([]byte(nil), p...)
	}
	return out
}

// Len returns the pending count.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.pending)
}

// Path returns the journal file location.
func (j *Journal) Path() string { return j.path }

// Warning reports whether OpenJournal's replay was partial: non-nil when
// the header was unrecognisable or corrupt/torn records were dropped, so
// some accepted work may not have been recovered. The journal is still
// usable; this exists so operators see that recovery was incomplete.
func (j *Journal) Warning() error { return j.warn }

// Close releases the file handle; the journal stays on disk.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}
