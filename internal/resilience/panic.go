package resilience

import "fmt"

// PanicError is a recovered panic promoted to an error: the containment
// layers (scheduler workers, engine chunk execution, the legacy per-node
// goroutines) convert a panicking simulation into a failed job carrying
// the panic value and the captured stack, never a dead process.
//
// A PanicError is permanent: a panic is a logic failure (or an injected
// one standing in for it), and re-running it would fail the same way —
// the job fails, the daemon survives, the operator reads the stack.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery
	// (runtime/debug.Stack).
	Stack []byte
}

// NewPanicError wraps a recovered value and its stack.
func NewPanicError(value any, stack []byte) *PanicError {
	return &PanicError{Value: value, Stack: stack}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("resilience: recovered panic: %v", e.Value)
}

// Transient reports false: panics are never retried.
func (e *PanicError) Transient() bool { return false }
