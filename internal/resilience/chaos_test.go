// The chaos suite: end-to-end fault injection against the real
// scheduler, store and host engine, driven from fixed seeds. The rule
// under test is the package invariant — injected faults may fail or
// delay work, never corrupt it: any run that completes under injection
// is bit-identical in its physics to the fault-free baseline, a
// panicking worker becomes a failed job (never a dead process), and an
// open store breaker degrades the scheduler to compute-only serving.
//
// The suite lives in an external test package so it can drive sched and
// store, which themselves import resilience. Tests installing the
// process-wide injector must not run in parallel.
package resilience_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"airshed/internal/core"
	"airshed/internal/fx"
	"airshed/internal/resilience"
	"airshed/internal/scenario"
	"airshed/internal/sched"
	"airshed/internal/store"
)

// chaosSeeds are the fixed fault seeds the suite (and CI's chaos-smoke
// job) replays.
var chaosSeeds = []uint64{1, 7, 42}

func chaosSpec(nodes int) scenario.Spec {
	return scenario.Spec{Dataset: "mini", Machine: "t3e", Nodes: nodes, Hours: 1}
}

// withInjector installs in process-wide for the test's duration.
func withInjector(t *testing.T, in *resilience.Injector) {
	t.Helper()
	if resilience.Enabled() {
		t.Fatal("another injector is already active")
	}
	resilience.Enable(in)
	t.Cleanup(resilience.Disable)
}

var (
	baselineMu    sync.Mutex
	baselineCache = map[string]*core.Result{}
)

// baseline runs the spec fault-free (once per spec, cached) for the
// bit-identity comparison.
func baseline(t *testing.T, spec scenario.Spec) *core.Result {
	t.Helper()
	if resilience.Enabled() {
		t.Fatal("baseline must be computed before enabling the injector")
	}
	spec = spec.Normalize()
	baselineMu.Lock()
	defer baselineMu.Unlock()
	if res, ok := baselineCache[spec.Hash()]; ok {
		return res
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	cfg.GoParallel = true
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	baselineCache[spec.Hash()] = res
	return res
}

// assertPhysicsIdentical enforces the chaos invariant: the physics of a
// completed run is bit-identical to the fault-free baseline (priced
// times go through replay arithmetic and are compared elsewhere).
func assertPhysicsIdentical(t *testing.T, name string, got, want *core.Result) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: no result", name)
	}
	if !reflect.DeepEqual(got.Final, want.Final) {
		t.Errorf("%s: final concentrations differ from the fault-free baseline", name)
	}
	if !reflect.DeepEqual(got.HourlyPeakO3, want.HourlyPeakO3) ||
		!reflect.DeepEqual(got.HourlyPeakCell, want.HourlyPeakCell) {
		t.Errorf("%s: hourly ozone peaks differ from the fault-free baseline", name)
	}
	if got.PeakO3 != want.PeakO3 || got.PeakO3Cell != want.PeakO3Cell {
		t.Errorf("%s: peak %g@%d, baseline %g@%d", name,
			got.PeakO3, got.PeakO3Cell, want.PeakO3, want.PeakO3Cell)
	}
	if got.TotalSteps != want.TotalSteps {
		t.Errorf("%s: steps %d, baseline %d", name, got.TotalSteps, want.TotalSteps)
	}
}

func openChaosStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func shutdownSched(t *testing.T, s *sched.Scheduler) {
	t.Helper()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func awaitJob(t *testing.T, s *sched.Scheduler, id string) sched.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := s.Await(ctx, id)
	if err != nil {
		t.Fatalf("Await(%s): %v", id, err)
	}
	return st
}

// TestChaosStoreFaultsBitIdentical injects a 10% fault rate into store
// reads and writes across the fixed seeds. Store degradation never
// fails a job (persistence is best-effort: reads miss, writes are
// swallowed), so every submission must complete — and bit-identically
// to the fault-free baseline, whether it ran cold, warm-started, or
// was served from a surviving artifact.
func TestChaosStoreFaultsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs real numerics")
	}
	specs := []scenario.Spec{chaosSpec(1), chaosSpec(2), chaosSpec(4)}
	want := make(map[string]*core.Result)
	for _, sp := range specs {
		want[sp.Normalize().Hash()] = baseline(t, sp)
	}

	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			inj := resilience.New(seed).
				Set(resilience.PointStoreRead, 0.10).
				Set(resilience.PointStoreWrite, 0.10)
			withInjector(t, inj)
			st := openChaosStore(t)

			// Two generations against one store: the second exercises
			// the faulted read paths (result hits, warm starts).
			for gen := 0; gen < 2; gen++ {
				s := sched.New(sched.Options{
					Workers: 2, GoParallel: true, Store: st,
					Retry: resilience.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Jitter: 0.5, Seed: seed},
				})
				for _, sp := range specs {
					job, err := s.Submit(sp)
					if err != nil {
						t.Fatalf("Submit(%v): %v", sp, err)
					}
					final := awaitJob(t, s, job.ID)
					if final.State != sched.Done {
						t.Fatalf("gen %d %v: state %v, err %v", gen, sp, final.State, final.Err)
					}
					assertPhysicsIdentical(t, sp.Hash(), final.Result, want[sp.Normalize().Hash()])
				}
				shutdownSched(t, s)
			}
			if inj.Calls(resilience.PointStoreWrite) == 0 {
				t.Error("no store writes were attempted: the chaos run exercised nothing")
			}
		})
	}
}

// TestChaosRetryRecoversTransientFaults fails the first two execution
// attempts of a job outright (a limited sched.exec outage) and expects
// the retry loop to land the third attempt, with the attempt count and
// last transient error surfaced on the job.
func TestChaosRetryRecoversTransientFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs real numerics")
	}
	for _, seed := range chaosSeeds {
		inj := resilience.New(seed).SetLimited(resilience.PointSchedExec, 1, 2)
		resilience.Enable(inj)
		s := sched.New(sched.Options{
			Workers: 1, GoParallel: true,
			Retry: resilience.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Jitter: 0.5, Seed: seed},
		})
		job, err := s.Submit(chaosSpec(2))
		if err != nil {
			t.Fatal(err)
		}
		final := awaitJob(t, s, job.ID)
		if final.State != sched.Done {
			t.Fatalf("seed %d: job did not recover: %v (%v)", seed, final.State, final.Err)
		}
		if final.Attempts != 3 {
			t.Errorf("seed %d: attempts = %d, want 3", seed, final.Attempts)
		}
		if final.LastErr == nil || !resilience.IsTransient(final.LastErr) {
			t.Errorf("seed %d: last transient error not surfaced: %v", seed, final.LastErr)
		}
		if c := s.Counters(); c.Retries != 2 {
			t.Errorf("seed %d: retries counter = %d, want 2", seed, c.Retries)
		}
		shutdownSched(t, s)
		resilience.Disable()
	}
}

// TestChaosPipelineStageFaultsRecover injects one transient fault into
// each streaming-pipeline stage (the prefetch decode and the async
// snapshot writer) of a pipelined multi-hour run, across the fixed
// seeds. The first attempt dies in the prefetch stage, the second in
// the writer, the third completes — and the recovered physics must be
// bit-identical to the fault-free *serial* baseline, pinning the PR-5
// invariant through the overlapped hour loop.
func TestChaosPipelineStageFaultsRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs real numerics")
	}
	spec := chaosSpec(2)
	spec.Hours = 3
	want := baseline(t, spec)

	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			inj := resilience.New(seed).
				SetLimited(resilience.PointPipePrefetch, 1, 1).
				SetLimited(resilience.PointPipeWrite, 1, 1)
			withInjector(t, inj)
			s := sched.New(sched.Options{
				Workers: 1, GoParallel: true, PipelineDepth: 2,
				Retry: resilience.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Jitter: 0.5, Seed: seed},
			})
			defer shutdownSched(t, s)

			job, err := s.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			final := awaitJob(t, s, job.ID)
			if final.State != sched.Done {
				t.Fatalf("pipelined job did not recover: %v (%v)", final.State, final.Err)
			}
			if final.Attempts != 3 {
				t.Errorf("attempts = %d, want 3 (one per faulted stage, then clean)", final.Attempts)
			}
			if final.LastErr == nil || !resilience.IsTransient(final.LastErr) {
				t.Errorf("stage fault not surfaced as transient: %v", final.LastErr)
			}
			for _, pt := range []string{resilience.PointPipePrefetch, resilience.PointPipeWrite} {
				if inj.Fired(pt) != 1 {
					t.Errorf("point %s fired %d times, want 1", pt, inj.Fired(pt))
				}
			}
			assertPhysicsIdentical(t, fmt.Sprintf("pipeline-seed-%d", seed), final.Result, want)
		})
	}
}

// TestChaosPanicBecomesFailedJob arms a one-shot panic in the job
// execution path: the job must fail with the contained PanicError (a
// permanent failure — exactly one attempt), the panic counter must
// move, and the same worker must cleanly run the next job.
func TestChaosPanicBecomesFailedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs real numerics")
	}
	inj := resilience.New(1).ArmPanic(resilience.PointSchedExec)
	withInjector(t, inj)
	s := sched.New(sched.Options{Workers: 1, GoParallel: true})
	defer shutdownSched(t, s)

	job, err := s.Submit(chaosSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	final := awaitJob(t, s, job.ID)
	if final.State != sched.Failed {
		t.Fatalf("panicked job state = %v, want failed", final.State)
	}
	var pe *resilience.PanicError
	if !errors.As(final.Err, &pe) {
		t.Fatalf("job error %v does not carry the PanicError", final.Err)
	}
	if len(pe.Stack) == 0 {
		t.Error("contained panic lost its stack")
	}
	if final.Attempts != 1 {
		t.Errorf("panicked job made %d attempts, want 1 (panics are permanent)", final.Attempts)
	}
	if c := s.Counters(); c.Panics != 1 || c.Failed != 1 {
		t.Errorf("counters = %+v, want 1 panic / 1 failed", c)
	}

	// The pool survived: the next job on the same single worker runs.
	job2, err := s.Submit(chaosSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if final2 := awaitJob(t, s, job2.ID); final2.State != sched.Done {
		t.Fatalf("worker did not survive the panic: %v (%v)", final2.State, final2.Err)
	}
}

// TestChaosEnginePanicContained arms a one-shot panic inside a host
// engine chunk — the deepest containment layer. The run fails with the
// chunk's PanicError, the engine's panic gauge moves, and the shared
// pool keeps executing later runs bit-identically.
func TestChaosEnginePanicContained(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs real numerics")
	}
	want := baseline(t, chaosSpec(2))
	before := fx.SharedEngine().Stats().Panics

	inj := resilience.New(7).ArmPanic(resilience.PointFxChunk)
	withInjector(t, inj)
	s := sched.New(sched.Options{Workers: 1, GoParallel: true})
	defer shutdownSched(t, s)

	job, err := s.Submit(chaosSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	final := awaitJob(t, s, job.ID)
	if final.State != sched.Failed {
		t.Fatalf("run with a panicking chunk: state %v, err %v", final.State, final.Err)
	}
	if final.Err == nil || !strings.Contains(final.Err.Error(), "panic") {
		t.Errorf("chunk panic not surfaced in the job error: %v", final.Err)
	}
	if got := fx.SharedEngine().Stats().Panics; got != before+1 {
		t.Errorf("engine panic gauge = %d, want %d", got, before+1)
	}

	// The pool survived and still computes correctly.
	resilience.Disable()
	job2, err := s.Submit(chaosSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	final2 := awaitJob(t, s, job2.ID)
	if final2.State != sched.Done {
		t.Fatalf("engine did not survive the chunk panic: %v (%v)", final2.State, final2.Err)
	}
	assertPhysicsIdentical(t, "post-panic", final2.Result, want)
}

// TestChaosBreakerDegradesToComputeOnly drives every store write into
// failure until the breaker opens, and verifies the scheduler's
// contract in that state: jobs keep completing (compute-only,
// bit-identical), degraded operations are counted instead of hitting
// the disk, and the store reports Degraded for /healthz.
func TestChaosBreakerDegradesToComputeOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs real numerics")
	}
	want := map[string]*core.Result{
		chaosSpec(2).Normalize().Hash(): baseline(t, chaosSpec(2)),
		chaosSpec(1).Normalize().Hash(): baseline(t, chaosSpec(1)),
	}

	inj := resilience.New(42).Set(resilience.PointStoreWrite, 1)
	withInjector(t, inj)
	st := openChaosStore(t)
	st.SetBreaker(resilience.NewBreaker(2, time.Hour)) // opens fast, stays open
	s := sched.New(sched.Options{Workers: 1, GoParallel: true, Store: st,
		Retry: resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, Jitter: 0.5}})
	defer shutdownSched(t, s)

	job, err := s.Submit(chaosSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	final := awaitJob(t, s, job.ID)
	if final.State != sched.Done {
		t.Fatalf("job under total write failure: %v (%v)", final.State, final.Err)
	}
	assertPhysicsIdentical(t, "breaker-open", final.Result, want[final.Hash])

	if !st.Degraded() {
		t.Fatal("store did not degrade after consecutive write failures")
	}
	c := st.Counters()
	if c.Faults < 2 {
		t.Errorf("store faults = %d, want >= breaker threshold 2", c.Faults)
	}
	if c.DegradedOps == 0 {
		t.Error("no operations were refused while degraded")
	}

	// Still serving while degraded — the faults are now irrelevant
	// because the breaker refuses before the injection point.
	job2, err := s.Submit(chaosSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	final2 := awaitJob(t, s, job2.ID)
	if final2.State != sched.Done {
		t.Fatalf("degraded scheduler stopped serving: %v (%v)", final2.State, final2.Err)
	}
	assertPhysicsIdentical(t, "degraded-serving", final2.Result, want[final2.Hash])
}

// TestChaosBreakerRecovers closes the loop: once the underlying faults
// stop and the cooldown elapses, the store's half-open probe re-admits
// I/O and the degraded flag clears.
func TestChaosBreakerRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs real numerics")
	}
	res := baseline(t, chaosSpec(2))

	inj := resilience.New(7).Set(resilience.PointStoreWrite, 1)
	withInjector(t, inj)
	st := openChaosStore(t)
	// The cooldown must comfortably outlast the encode work a PutResult
	// does before it consults the breaker — under -race on a loaded
	// machine that encode alone can take tens of milliseconds, and a
	// too-short cooldown lets the breaker go half-open between the two
	// calls below.
	st.SetBreaker(resilience.NewBreaker(1, 500*time.Millisecond))

	if err := st.PutResult("deadbeef", res); err == nil {
		t.Fatal("injected write unexpectedly succeeded")
	}
	if !st.Degraded() {
		t.Fatal("breaker did not open")
	}
	if err := st.PutResult("deadbeef", res); !errors.Is(err, store.ErrDegraded) {
		t.Fatalf("write while open = %v, want ErrDegraded", err)
	}

	// The outage ends; after the cooldown the probe write re-closes.
	resilience.Disable()
	time.Sleep(600 * time.Millisecond)
	if err := st.PutResult("deadbeef", res); err != nil {
		t.Fatalf("probe write after recovery: %v", err)
	}
	if st.Degraded() {
		t.Error("store still degraded after a successful probe")
	}
	if got, ok := st.GetResult("deadbeef"); !ok || got.PeakO3 != res.PeakO3 {
		t.Error("recovered store lost the probe write")
	}
}
