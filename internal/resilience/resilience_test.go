package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestInjectorDeterministicAndRateBound(t *testing.T) {
	const calls = 10000
	const rate = 0.1
	fire := func() int {
		in := New(42).Set(PointStoreRead, rate)
		n := 0
		for i := 0; i < calls; i++ {
			if in.fire(PointStoreRead) != nil {
				n++
			}
		}
		return n
	}
	a, b := fire(), fire()
	if a != b {
		t.Fatalf("same seed fired %d then %d faults", a, b)
	}
	got := float64(a) / calls
	if math.Abs(got-rate) > 0.02 {
		t.Fatalf("fire rate %.3f, want ~%.2f", got, rate)
	}
	// A different seed fires a different pattern (overwhelmingly likely).
	in1 := New(1).Set(PointStoreRead, rate)
	in2 := New(2).Set(PointStoreRead, rate)
	same := true
	for i := 0; i < 1000; i++ {
		if (in1.fire(PointStoreRead) != nil) != (in2.fire(PointStoreRead) != nil) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fault patterns")
	}
}

func TestInjectorDisabledFiresNothing(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() after Disable")
	}
	for i := 0; i < 100; i++ {
		if err := Fire(PointSchedExec); err != nil {
			t.Fatalf("disabled Fire returned %v", err)
		}
	}
}

func TestInjectorGlobalEnableDisable(t *testing.T) {
	in := New(7).Set(PointSchedExec, 1)
	Enable(in)
	defer Disable()
	err := Fire(PointSchedExec)
	if err == nil {
		t.Fatal("rate-1 point did not fire")
	}
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Point != PointSchedExec {
		t.Fatalf("fired %v, want InjectedError at %s", err, PointSchedExec)
	}
	if !IsTransient(err) {
		t.Fatal("injected faults must classify transient")
	}
	// Unconfigured points stay silent.
	if err := Fire(PointHourRead); err != nil {
		t.Fatalf("unconfigured point fired %v", err)
	}
	Disable()
	if err := Fire(PointSchedExec); err != nil {
		t.Fatalf("Fire after Disable returned %v", err)
	}
	if in.Calls(PointSchedExec) != 1 || in.Fired(PointSchedExec) != 1 {
		t.Fatalf("calls/fired = %d/%d, want 1/1", in.Calls(PointSchedExec), in.Fired(PointSchedExec))
	}
}

func TestInjectorLimitStopsFiring(t *testing.T) {
	in := New(3).SetLimited(PointStoreWrite, 1, 2)
	fired := 0
	for i := 0; i < 10; i++ {
		if in.fire(PointStoreWrite) != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("limited point fired %d times, want 2", fired)
	}
}

// TestInjectorLimitConcurrent hammers a capped point from many
// goroutines: the cap is enforced with a CAS, so the total number of
// faults handed out (and the Fired counter) must land exactly on the
// limit, never past it.
func TestInjectorLimitConcurrent(t *testing.T) {
	const limit, goroutines, calls = 5, 16, 200
	in := New(11).SetLimited(PointStoreRead, 1, limit)
	var fired atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				if in.fire(PointStoreRead) != nil {
					fired.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if fired.Load() != limit {
		t.Fatalf("capped point handed out %d faults, want exactly %d", fired.Load(), limit)
	}
	if in.Fired(PointStoreRead) != limit {
		t.Fatalf("Fired = %d, want %d", in.Fired(PointStoreRead), limit)
	}
}

func TestInjectorArmedPanic(t *testing.T) {
	in := New(1).ArmPanic(PointFxChunk)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("armed point did not panic")
			}
			if _, ok := r.(InjectedPanic); !ok {
				t.Fatalf("panicked with %T, want InjectedPanic", r)
			}
		}()
		_ = in.fire(PointFxChunk)
	}()
	// Armed once only.
	if err := in.fire(PointFxChunk); err != nil {
		t.Fatalf("second call fired %v, want nil", err)
	}
}

func TestClassification(t *testing.T) {
	base := errors.New("disk on fire")
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"unknown", base, false},
		{"marked transient", MarkTransient(base), true},
		{"marked permanent", MarkPermanent(base), false},
		{"wrapped transient", fmt.Errorf("hour 3: %w", MarkTransient(base)), true},
		{"injected", &InjectedError{Point: "x", Call: 1}, true},
		{"wrapped injected", fmt.Errorf("store: %w", &InjectedError{Point: "x"}), true},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"canceled inside transient", MarkTransient(fmt.Errorf("run: %w", context.Canceled)), false},
		{"panic", NewPanicError("boom", nil), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRetryPolicyDelays(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Multiplier: 2, Jitter: 0}.WithDefaults()
	if d := p.Delay(1, 0); d != 10*time.Millisecond {
		t.Fatalf("Delay(1) = %v, want 10ms", d)
	}
	if d := p.Delay(2, 0); d != 20*time.Millisecond {
		t.Fatalf("Delay(2) = %v, want 20ms", d)
	}
	if d := p.Delay(4, 0); d != 50*time.Millisecond {
		t.Fatalf("Delay(4) = %v, want the 50ms cap", d)
	}
	// Deterministic jitter: same (seed, key, attempt) -> same delay.
	pj := RetryPolicy{BaseDelay: 10 * time.Millisecond, Jitter: 0.5, Seed: 9}.WithDefaults()
	if pj.Delay(2, 123) != pj.Delay(2, 123) {
		t.Fatal("jittered delay is not deterministic")
	}
	if pj.Delay(2, 123) == pj.Delay(2, 456) {
		t.Fatal("jitter does not vary with key")
	}
	if d := pj.Delay(2, 123); d <= 0 || d > 20*time.Millisecond {
		t.Fatalf("jittered Delay(2) = %v, want in (0, 20ms]", d)
	}
}

func TestRetryTransientThenSuccess(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: 0}
	n := 0
	attempts, err := Retry(context.Background(), p, 1, func() error {
		n++
		if n < 3 {
			return MarkTransient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("Retry = (%d, %v), want (3, nil)", attempts, err)
	}
}

func TestRetryPermanentFailsFast(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	boom := errors.New("bad spec")
	attempts, err := Retry(context.Background(), p, 1, func() error { return boom })
	if !errors.Is(err, boom) || attempts != 1 {
		t.Fatalf("Retry = (%d, %v), want (1, %v)", attempts, err, boom)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: 0}
	flaky := MarkTransient(errors.New("still flaky"))
	attempts, err := Retry(context.Background(), p, 1, func() error { return flaky })
	if !errors.Is(err, flaky) || attempts != 3 {
		t.Fatalf("Retry = (%d, %v), want (3, %v)", attempts, err, flaky)
	}
}

func TestRetryCancelledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Second, Jitter: 0}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	attempts, err := Retry(ctx, p, 1, func() error { return MarkTransient(errors.New("flaky")) })
	if attempts != 1 || !errors.Is(err, context.Canceled) {
		t.Fatalf("Retry = (%d, %v), want (1, canceled)", attempts, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v to interrupt the backoff", elapsed)
	}
}

func TestPanicErrorPermanentAndDescriptive(t *testing.T) {
	err := NewPanicError("index out of range", []byte("stack"))
	if IsTransient(err) {
		t.Fatal("PanicError must be permanent")
	}
	var pe *PanicError
	if !errors.As(fmt.Errorf("job: %w", err), &pe) || string(pe.Stack) != "stack" {
		t.Fatalf("PanicError did not survive wrapping: %v", err)
	}
}
