package resilience

import (
	"testing"
	"time"
)

// fakeClock is a manually-advanced breaker clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := NewBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected op %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v", b.State())
	}
	b.Allow()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3/3 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed an op before cooldown")
	}
	if b.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", b.Trips())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(3, time.Minute)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("interleaved successes still tripped the breaker: %v", b.State())
	}
}

func TestBreakerProbeRecloses(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(2, 10*time.Second)
	b.SetClock(clk.now)
	b.Failure()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not open")
	}
	clk.advance(9 * time.Second)
	if b.Allow() {
		t.Fatal("breaker allowed before the cooldown elapsed")
	}
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not admit the probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("breaker admitted a second concurrent probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker rejected an op")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(2, 10*time.Second)
	b.SetClock(clk.now)
	b.Failure()
	b.Failure()
	clk.advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("no probe after cooldown")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	// The cooldown restarts from the failed probe.
	if b.Allow() {
		t.Fatal("breaker allowed immediately after a failed probe")
	}
	clk.advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("no second probe after the restarted cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("final state = %v, want closed", b.State())
	}
	if b.Trips() != 2 {
		t.Fatalf("Trips = %d, want 2", b.Trips())
	}
}
