// Package resilience makes failure a first-class, testable input to the
// Airshed service. It provides the four mechanisms the scenario service
// uses to survive flaky hardware — the property the source paper's
// production deployments depended on and that "Towards Parallel
// Computing on the Internet" identifies as gating for long-running
// parallel applications:
//
//   - a deterministic, seed-driven fault-injection registry (Injector):
//     named injection points threaded through store I/O, hourio
//     serialisation, scheduler job execution and engine chunk execution
//     fire errors (or one armed panic) at a configured rate, decided
//     purely by (seed, point, call index) so every chaos run is
//     reproducible. Disabled, a point costs one atomic load;
//   - error classification (transient vs permanent) and a capped
//     exponential backoff policy with deterministic jitter (RetryPolicy,
//     Retry) for job retries;
//   - a circuit breaker (Breaker) that converts N consecutive I/O
//     failures into a degraded compute-only mode with periodic probe
//     re-enable;
//   - panic containment (PanicError, NewPanicError) and a small
//     crash-recovery write-ahead journal (Journal) so a SIGKILL loses
//     in-flight compute but no accepted work.
//
// The testing rule the chaos suite enforces: faults are deterministic
// inputs, and any run that completes under injected faults must produce
// results bit-identical to the fault-free baseline — injection may only
// fail or delay work, never corrupt it.
package resilience

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Canonical injection point names. Each names the operation the fault
// pretends to fail, at the call site that would surface a real failure
// of that operation.
const (
	// PointStoreRead fires inside artifact-store read verification
	// (result/record/checkpoint reads): an injected fault is an I/O
	// error, reported as a miss and counted against the breaker.
	PointStoreRead = "store.read"
	// PointStoreWrite fires at the head of the store's atomic write.
	PointStoreWrite = "store.write"
	// PointHourRead fires at the head of hourio deserialisation
	// (hour inputs and snapshots — including checkpoint reads).
	PointHourRead = "hourio.read"
	// PointHourWrite fires at the head of hourio serialisation.
	PointHourWrite = "hourio.write"
	// PointSchedExec fires at the head of scheduler job execution (the
	// whole-job failure domain: a worker losing its run).
	PointSchedExec = "sched.exec"
	// PointFxChunk fires per host-engine chunk (the sub-job failure
	// domain: one core's span of a phase).
	PointFxChunk = "fx.chunk"
	// PointPipePrefetch fires at the head of the streaming hour
	// pipeline's prefetch stage (once per prefetched hour): a fault is
	// the input decode slot losing an hour file mid-read.
	PointPipePrefetch = "pipe.prefetch"
	// PointPipeWrite fires at the head of the streaming hour pipeline's
	// async output stage (once per written hour): a fault is the output
	// slot losing a snapshot write.
	PointPipeWrite = "pipe.write"
	// PointFleetDispatch fires per coordinator->worker shard dispatch
	// attempt: a fault is the dispatch POST lost on the wire.
	PointFleetDispatch = "fleet.dispatch"
	// PointFleetBlobGet fires per HTTP blob-backend read attempt (a
	// fleet worker fetching an artifact from the coordinator's store).
	PointFleetBlobGet = "fleet.blob.get"
	// PointFleetBlobPut fires per HTTP blob-backend write attempt.
	PointFleetBlobPut = "fleet.blob.put"
	// PointFleetHeartbeat fires per agent heartbeat: a fault is the
	// heartbeat dropped before it reaches the coordinator.
	PointFleetHeartbeat = "fleet.heartbeat"
	// PointStoreScrub fires per artifact the integrity scrubber visits:
	// a fault is a read error during verification — the artifact is
	// skipped this pass (injection may fail work, never corrupt it, so a
	// fired scrub fault must NOT quarantine a healthy blob).
	PointStoreScrub = "store.scrub"
	// PointCoreSentinel fires once per simulated hour just before the
	// physics sentinel scan: a fault poisons the replica (NaN, negative,
	// or mass drift by call index) so the sentinel path is testable
	// without breaking the real kernels.
	PointCoreSentinel = "core.sentinel"
	// PointCoreWedge fires at the head of each simulated hour: a fault
	// black-holes the hour (blocks until the run context is cancelled),
	// the failure shape the scheduler's stuck-hour watchdog exists for.
	PointCoreWedge = "core.wedge"
)

// Points lists the canonical injection points.
func Points() []string {
	return []string{PointStoreRead, PointStoreWrite, PointHourRead, PointHourWrite, PointSchedExec, PointFxChunk, PointPipePrefetch, PointPipeWrite, PointFleetDispatch, PointFleetBlobGet, PointFleetBlobPut, PointFleetHeartbeat, PointStoreScrub, PointCoreSentinel, PointCoreWedge}
}

// InjectedError is the error an injection point fires. It is transient
// by construction: injected faults model recoverable I/O and execution
// failures, so the retry machinery must engage on them.
type InjectedError struct {
	// Point is the injection point that fired.
	Point string
	// Call is the 1-based call index at that point.
	Call uint64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("resilience: injected fault at %s (call %d)", e.Point, e.Call)
}

// Transient marks injected faults retryable (see IsTransient).
func (e *InjectedError) Transient() bool { return true }

// InjectedPanic is the value an armed injection point panics with; the
// containment layers convert it into a *PanicError like any other panic.
type InjectedPanic struct {
	// Point is the injection point that fired.
	Point string
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("resilience: injected panic at %s", p.Point)
}

// point is one injection point's configuration and counters.
type point struct {
	rate  float64 // fault probability per call
	limit uint64  // max fires (0 = unlimited)

	panicArmed atomic.Bool // next call panics, once

	calls atomic.Uint64
	fired atomic.Uint64
}

// Injector is a deterministic fault-injection registry: each call to a
// configured point fires based only on the injector seed, the point name
// and the call index at that point, so a chaos run replays exactly under
// a fixed seed (modulo which goroutine reaches the nth call first —
// which may reorder faults across concurrent jobs but never changes any
// completed result; see the package invariant).
//
// Configure all points before Enable; Fire is safe for concurrent use.
type Injector struct {
	seed uint64

	mu     sync.RWMutex
	points map[string]*point
}

// New creates an injector with the given seed.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, points: make(map[string]*point)}
}

// Seed returns the injector's seed.
func (in *Injector) Seed() uint64 { return in.seed }

// Set configures a point to fire errors at the given per-call
// probability (0 disables, 1 fires every call). Returns the injector for
// chaining.
func (in *Injector) Set(name string, rate float64) *Injector {
	return in.SetLimited(name, rate, 0)
}

// SetLimited is Set with a cap on the total number of fires (0 =
// unlimited): "fail the first limit matching calls, then recover" —
// the shape of a transient outage.
func (in *Injector) SetLimited(name string, rate float64, limit uint64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.points[name]
	if p == nil {
		p = &point{}
		in.points[name] = p
	}
	p.rate = rate
	p.limit = limit
	return in
}

// ArmPanic makes the next call to the point panic (once) with an
// InjectedPanic value — the forced-worker-panic input of the chaos
// acceptance criterion.
func (in *Injector) ArmPanic(name string) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.points[name]
	if p == nil {
		p = &point{}
		in.points[name] = p
	}
	p.panicArmed.Store(true)
	return in
}

// Calls returns how many times the point has been reached.
func (in *Injector) Calls(name string) uint64 {
	in.mu.RLock()
	p := in.points[name]
	in.mu.RUnlock()
	if p == nil {
		return 0
	}
	return p.calls.Load()
}

// Fired returns how many faults the point has fired (errors and panics).
func (in *Injector) Fired(name string) uint64 {
	in.mu.RLock()
	p := in.points[name]
	in.mu.RUnlock()
	if p == nil {
		return 0
	}
	return p.fired.Load()
}

// fire implements the point decision for this injector.
func (in *Injector) fire(name string) error {
	in.mu.RLock()
	p := in.points[name]
	in.mu.RUnlock()
	if p == nil {
		return nil
	}
	n := p.calls.Add(1)
	if p.panicArmed.CompareAndSwap(true, false) {
		p.fired.Add(1)
		panic(InjectedPanic{Point: name})
	}
	if p.rate <= 0 {
		return nil
	}
	if frac(in.seed, name, n) >= p.rate {
		return nil
	}
	if p.limit > 0 {
		// CAS so concurrent callers can never push fired past the cap.
		for {
			cur := p.fired.Load()
			if cur >= p.limit {
				return nil
			}
			if p.fired.CompareAndSwap(cur, cur+1) {
				return &InjectedError{Point: name, Call: n}
			}
		}
	}
	p.fired.Add(1)
	return &InjectedError{Point: name, Call: n}
}

// frac maps (seed, point, call) to a uniform [0, 1) fraction.
func frac(seed uint64, name string, call uint64) float64 {
	h := mix(seed ^ mix(HashKey(name)^call))
	return float64(h>>11) / (1 << 53)
}

// mix is the splitmix64 finaliser: a cheap, well-distributed bijection.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HashKey hashes a string to a uint64 (FNV-1a); used for deterministic
// per-key jitter and the injection decision.
func HashKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// active is the process-wide injector; nil means injection is disabled
// and every Fire call is a single atomic load.
var active atomic.Pointer[Injector]

// Enable installs the injector process-wide. Pass nil to disable.
func Enable(in *Injector) {
	active.Store(in)
}

// Disable removes the process-wide injector.
func Disable() { active.Store(nil) }

// Enabled reports whether an injector is installed.
func Enabled() bool { return active.Load() != nil }

// Fire is the injection point call: returns nil immediately when no
// injector is installed (the zero-cost disabled path), otherwise asks
// the active injector whether the fault fires as an error — or as a
// panic, when the point is armed.
func Fire(name string) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	return in.fire(name)
}
