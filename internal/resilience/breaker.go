package resilience

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes every operation (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen lets exactly one probe operation through; its
	// outcome decides between Closed and Open.
	BreakerHalfOpen
	// BreakerOpen short-circuits every operation until the cooldown
	// elapses.
	BreakerOpen
)

// String names the state for /healthz and /metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// Breaker is a consecutive-failure circuit breaker: after Threshold
// consecutive failures it opens, short-circuiting the protected
// operation (the store degrades to compute-only mode); after Cooldown it
// half-opens and admits a single probe, whose outcome re-closes or
// re-opens the circuit. Safe for concurrent use.
type Breaker struct {
	mu          sync.Mutex
	threshold   int
	cooldown    time.Duration
	now         func() time.Time
	state       BreakerState
	consecutive int
	openedAt    time.Time
	probing     bool
	trips       uint64
}

// Default breaker parameters (used for zero arguments).
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 10 * time.Second
)

// NewBreaker creates a closed breaker; threshold <= 0 and cooldown <= 0
// take the defaults.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock replaces the breaker's clock (test hook for deterministic
// cooldown expiry). Call before concurrent use.
func (b *Breaker) SetClock(now func() time.Time) { b.now = now }

// Allow reports whether the protected operation may proceed. Every
// allowed operation MUST later call exactly one of Success or Failure —
// in half-open state Allow admits a single probe and further calls are
// rejected until that probe reports back.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a successful protected operation: the failure streak
// resets and a probing breaker re-closes.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.probing = false
	b.state = BreakerClosed
}

// Failure reports a failed protected operation: the streak grows and the
// breaker opens at the threshold (or immediately on a failed probe).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	wasProbe := b.state == BreakerHalfOpen
	b.probing = false
	if wasProbe || (b.state == BreakerClosed && b.consecutive >= b.threshold) {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trips++
	}
}

// State snapshots the breaker position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Ready reports whether an operation would currently be admitted,
// without transitioning state or consuming the half-open probe slot the
// way Allow does. Placement logic (the fleet packer skipping sick
// workers) wants this read-only view: an open breaker whose cooldown has
// elapsed is ready — the next real dispatch becomes the probe.
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		return b.now().Sub(b.openedAt) >= b.cooldown
	case BreakerHalfOpen:
		return !b.probing
	default:
		return true
	}
}

// Trips counts closed/half-open -> open transitions since creation.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
