// Package sweep is the batch policy-study engine of the scenario
// service: a declarative Request names a base scenario and a grid of
// axes to vary (emission-control scales, control activation hours, data
// sets, machines, node counts, execution modes); Expand turns the cross
// product into concrete scenario jobs, and an Engine fans them out
// through the internal/sched worker pool, tracking per-job progress and
// aggregating the finished runs into a policy comparison table
// (internal/analysis ozone peaks and standard-exceedance areas).
//
// This is the paper's motivating workload run as one request: "the
// effect of air pollution control measures can be evaluated at a low
// cost making it possible to select the best strategy" — many closely
// related Airshed runs, most of which share physics with one another.
// When the scheduler is backed by a persistent artifact store, the
// engine exploits that overlap deliberately: before submitting the
// sweep's jobs it runs a prefix-seed pass, submitting the longest
// shared physics prefix of every warm-start family (scenario
// Spec.PrefixSpec) and waiting for those seeds, so the shared hours are
// simulated exactly once and every variant then warm-starts from the
// seed's stored checkpoint — or, for jobs differing only in machine,
// node count or mode, skips simulation entirely via physics replay.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"airshed/internal/analysis"
	"airshed/internal/core"
	"airshed/internal/datasets"
	"airshed/internal/scenario"
	"airshed/internal/sched"
)

// MaxJobs bounds one sweep's expansion; a grid crossing past this is a
// request error, not a denial-of-service on the queue.
const MaxJobs = 1024

// ErrUnknownSweep reports a sweep ID the engine has never issued.
var ErrUnknownSweep = errors.New("sweep: unknown sweep")

// Grid lists the axes to vary around the base spec. Empty axes keep the
// base's value; the expansion is the cross product of the non-empty
// ones.
type Grid struct {
	NOxScales         []float64 `json:"nox_scales,omitempty"`
	VOCScales         []float64 `json:"voc_scales,omitempty"`
	ControlStartHours []int     `json:"control_start_hours,omitempty"`
	Datasets          []string  `json:"datasets,omitempty"`
	Machines          []string  `json:"machines,omitempty"`
	Nodes             []int     `json:"nodes,omitempty"`
	Modes             []string  `json:"modes,omitempty"`
}

// Request is a declarative batch study: a base scenario, a grid of
// variations, and optionally explicit extra specs (which only inherit
// nothing — they are complete scenarios of their own).
type Request struct {
	Name  string          `json:"name,omitempty"`
	Base  scenario.Spec   `json:"base"`
	Grid  Grid            `json:"grid,omitempty"`
	Specs []scenario.Spec `json:"specs,omitempty"`
}

// Expand produces the sweep's concrete scenario list: the grid's cross
// product applied to the base, then the explicit specs, validated and
// deduplicated by content hash (first occurrence wins). A request whose
// grid is empty and carries no explicit specs expands to the base
// alone; a request with explicit specs and a zero base is specs-only.
func (r Request) Expand() ([]scenario.Spec, error) {
	g := r.Grid
	datasetsAxis := orString(g.Datasets, r.Base.Dataset)
	machines := orString(g.Machines, r.Base.Machine)
	nodes := orInt(g.Nodes, r.Base.Nodes)
	modes := orString(g.Modes, r.Base.Mode)
	noxes := orFloat(g.NOxScales, r.Base.NOxScale)
	vocs := orFloat(g.VOCScales, r.Base.VOCScale)
	starts := orInt(g.ControlStartHours, r.Base.ControlStartHour)

	count := len(datasetsAxis) * len(machines) * len(nodes) * len(modes) *
		len(noxes) * len(vocs) * len(starts)
	if count+len(r.Specs) > MaxJobs {
		return nil, fmt.Errorf("sweep: grid expands to %d jobs (max %d)", count+len(r.Specs), MaxJobs)
	}

	var out []scenario.Spec
	seen := make(map[string]bool)
	add := func(sp scenario.Spec) error {
		if err := sp.Validate(); err != nil {
			return err
		}
		n := sp.Normalize()
		if h := n.Hash(); !seen[h] {
			seen[h] = true
			out = append(out, n)
		}
		return nil
	}
	if r.Base == (scenario.Spec{}) && len(r.Specs) > 0 {
		// Specs-only request (the programmatic path, e.g. internal/gems):
		// no base to cross, just the explicit scenario list.
		for _, sp := range r.Specs {
			if err := add(sp); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	for _, ds := range datasetsAxis {
		for _, m := range machines {
			for _, p := range nodes {
				for _, mode := range modes {
					for _, nox := range noxes {
						for _, voc := range vocs {
							for _, cs := range starts {
								sp := r.Base
								sp.Dataset, sp.Machine, sp.Nodes, sp.Mode = ds, m, p, mode
								sp.NOxScale, sp.VOCScale, sp.ControlStartHour = nox, voc, cs
								if err := add(sp); err != nil {
									return nil, err
								}
							}
						}
					}
				}
			}
		}
	}
	for _, sp := range r.Specs {
		if err := add(sp); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func orString(axis []string, base string) []string {
	if len(axis) == 0 {
		return []string{base}
	}
	return axis
}

func orInt(axis []int, base int) []int {
	if len(axis) == 0 {
		return []int{base}
	}
	return axis
}

func orFloat(axis []float64, base float64) []float64 {
	if len(axis) == 0 {
		return []float64{base}
	}
	return axis
}

// SeedSpecs computes the prefix-seed pass for a job list: for every
// group of two or more jobs sharing a physics prefix, the runnable spec
// of the longest shared prefix (scenario.Spec.PrefixSpec). Submitting
// and awaiting these before the jobs themselves makes each shared
// prefix compute exactly once; every family member then finds the
// seed's checkpoint in the store. Seeds that coincide with an actual
// job are kept — the later job submission becomes a cache hit.
func SeedSpecs(specs []scenario.Spec) []scenario.Spec {
	type fam struct {
		count int
		seed  scenario.Spec
		kind  int // prefix hours, to prefer longer seeds at equal hash
	}
	families := make(map[string]*fam)
	var order []string
	for _, sp := range specs {
		n := sp.Normalize()
		// The prefix boundaries where this job's physics can intersect a
		// sibling's: the full run, and the control activation hour (all
		// variants share the baseline up to there).
		ks := []int{n.EndHour()}
		if cs := n.ControlStartHour; cs > n.StartHour && cs < n.EndHour() {
			ks = append(ks, cs)
		}
		for _, k := range ks {
			ph := n.PhysicsPrefixHash(k)
			if f, ok := families[ph]; ok {
				f.count++
			} else {
				families[ph] = &fam{count: 1, seed: n.PrefixSpec(k), kind: k}
				order = append(order, ph)
			}
		}
	}
	var seeds []scenario.Spec
	seen := make(map[string]bool)
	for _, ph := range order {
		f := families[ph]
		if f.count < 2 {
			continue
		}
		if h := f.seed.Hash(); !seen[h] {
			seen[h] = true
			seeds = append(seeds, f.seed)
		}
	}
	return seeds
}

// PolicyRow is one line of the aggregate policy table: the scenario,
// its air-quality outcome and its cost.
type PolicyRow struct {
	Spec scenario.Spec `json:"spec"`
	// PeakO3 is the run's ground-level ozone maximum (ppm), at PeakCell.
	PeakO3   float64 `json:"peak_o3"`
	PeakCell int     `json:"peak_cell"`
	// ExceedanceKm2/Frac measure the area over the 1-hour ozone NAAQS at
	// the end of the run.
	ExceedanceKm2  float64 `json:"exceedance_km2"`
	ExceedanceFrac float64 `json:"exceedance_frac"`
	// VirtualSeconds is the simulated machine's run time, Efficiency its
	// parallel efficiency.
	VirtualSeconds float64 `json:"virtual_seconds"`
	Efficiency     float64 `json:"efficiency"`
	// Provenance: how the scheduler resolved the run.
	Cached        bool `json:"cached,omitempty"`
	FromStore     bool `json:"from_store,omitempty"`
	WarmStartHour int  `json:"warm_start_hour,omitempty"`
	PhysicsReplay bool `json:"physics_replay,omitempty"`
}

// JobView is the live view of one sweep job.
type JobView struct {
	Spec  scenario.Spec `json:"spec"`
	JobID string        `json:"job_id,omitempty"`
	State string        `json:"state"`
	Error string        `json:"error,omitempty"`
	// FailureKind classifies integrity failures: "physics" for a
	// sentinel trip (*core.PhysicsError), "watchdog" for a stuck-hour
	// cancellation (*sched.WatchdogError). Empty otherwise.
	FailureKind   string  `json:"failure_kind,omitempty"`
	Cached        bool    `json:"cached,omitempty"`
	FromStore     bool    `json:"from_store,omitempty"`
	WarmStartHour int     `json:"warm_start_hour,omitempty"`
	PhysicsReplay bool    `json:"physics_replay,omitempty"`
	PeakO3        float64 `json:"peak_o3,omitempty"`
	VirtualSecs   float64 `json:"virtual_seconds,omitempty"`
	WallSecs      float64 `json:"wall_seconds,omitempty"`
}

// Status is a point-in-time snapshot of one sweep.
type Status struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State string `json:"state"` // "running", "done" or "cancelled"
	Total int    `json:"total"`
	Seeds int    `json:"seeds"`

	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`

	// Integrity outcomes among the failures: sentinel trips and
	// watchdog cancellations (both permanent — no retries burned).
	PhysicsFailures int `json:"physics_failures,omitempty"`
	WatchdogCancels int `json:"watchdog_cancels,omitempty"`

	// Warm-start economics of the sweep's jobs.
	CacheHits      int `json:"cache_hits"`
	StoreHits      int `json:"store_hits"`
	WarmStarts     int `json:"warm_starts"`
	PhysicsReplays int `json:"physics_replays"`

	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at,omitempty"`

	Jobs []JobView `json:"jobs"`
	// Table is the aggregate policy table, present once State is "done".
	Table      []PolicyRow `json:"table,omitempty"`
	TableError string      `json:"table_error,omitempty"`
}

// sweepState is the engine's internal record of one sweep.
type sweepState struct {
	id    string
	name  string
	specs []scenario.Spec
	seeds []scenario.Spec

	mu        sync.Mutex
	jobIDs    []string // parallel to specs; "" until submitted
	jobErrs   []string // submission errors, parallel to specs
	cancelled bool
	started   time.Time
	finished  time.Time
	table     []PolicyRow
	tableErr  string

	done chan struct{}
}

func (st *sweepState) isCancelled() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cancelled
}

// Engine expands and drives sweeps over a scheduler. Create with
// NewEngine; an Engine is safe for concurrent use.
type Engine struct {
	sched *sched.Scheduler

	mu     sync.Mutex
	sweeps map[string]*sweepState
	order  []string
	seq    int
}

// NewEngine creates a sweep engine over s.
func NewEngine(s *sched.Scheduler) *Engine {
	return &Engine{sched: s, sweeps: make(map[string]*sweepState)}
}

// Scheduler returns the engine's underlying scheduler — callers that
// drive sweeps programmatically (internal/gems) use it to fetch the
// full core.Result of a finished job, which the JSON-oriented JobView
// deliberately omits.
func (e *Engine) Scheduler() *sched.Scheduler {
	return e.sched
}

// Results returns the full core.Result of every completed job of a
// sweep, keyed by the job spec's content hash (scenario.Spec.Hash). It
// is the bulk companion of Scheduler().Status for callers — like the
// source–receptor matrix assembler — that need every run's fields, not
// the JSON JobView. Jobs still pending, failed or cancelled are simply
// absent; call after Await for the complete set.
func (e *Engine) Results(id string) (map[string]*core.Result, error) {
	e.mu.Lock()
	st, ok := e.sweeps[id]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSweep, id)
	}
	st.mu.Lock()
	ids := append([]string(nil), st.jobIDs...)
	st.mu.Unlock()
	out := make(map[string]*core.Result)
	for i, spec := range st.specs {
		if ids[i] == "" {
			continue
		}
		js, err := e.sched.Status(ids[i])
		if err != nil || js.State != sched.Done || js.Result == nil {
			continue
		}
		out[spec.Hash()] = js.Result
	}
	return out, nil
}

// Start expands the request, registers the sweep and begins driving it
// in the background; the returned status is the initial snapshot (poll
// with Status, block with Await). Expansion and validation errors are
// returned synchronously.
func (e *Engine) Start(req Request) (Status, error) {
	specs, err := req.Expand()
	if err != nil {
		return Status{}, err
	}
	if len(specs) == 0 {
		return Status{}, fmt.Errorf("sweep: request expands to no jobs")
	}
	var seeds []scenario.Spec
	if e.sched.Persistent() {
		// Without a store a seed's checkpoints evaporate with the run, so
		// the pass would be pure overhead.
		seeds = SeedSpecs(specs)
	}
	st := &sweepState{
		name:    req.Name,
		specs:   specs,
		seeds:   seeds,
		jobIDs:  make([]string, len(specs)),
		jobErrs: make([]string, len(specs)),
		started: time.Now(),
		done:    make(chan struct{}),
	}
	e.mu.Lock()
	e.seq++
	st.id = fmt.Sprintf("s%04d", e.seq)
	e.sweeps[st.id] = st
	e.order = append(e.order, st.id)
	e.mu.Unlock()

	go e.run(st)
	return e.snapshot(st), nil
}

// run drives one sweep to completion: seed pass, job pass, table.
func (e *Engine) run(st *sweepState) {
	defer func() {
		st.mu.Lock()
		st.finished = time.Now()
		st.mu.Unlock()
		close(st.done)
	}()

	// Seed pass: compute every shared physics prefix exactly once. Seed
	// failures are not sweep failures — the jobs just run colder.
	var seedIDs []string
	for _, seed := range st.seeds {
		if js, err := e.submit(st, seed); err == nil {
			seedIDs = append(seedIDs, js.ID)
		} else if errors.Is(err, sched.ErrShuttingDown) || errors.Is(err, errSweepCancelled) {
			break
		}
	}
	for _, id := range seedIDs {
		e.sched.Await(context.Background(), id) //nolint:errcheck // best-effort
	}

	// Job pass.
	for i, spec := range st.specs {
		js, err := e.submit(st, spec)
		st.mu.Lock()
		if err != nil {
			st.jobErrs[i] = err.Error()
		} else {
			st.jobIDs[i] = js.ID
		}
		st.mu.Unlock()
		if errors.Is(err, sched.ErrShuttingDown) || errors.Is(err, errSweepCancelled) {
			break
		}
		if err == nil && st.isCancelled() {
			// Cancel raced this submission: its jobID snapshot predates the
			// job, so sweep it up here.
			e.sched.Cancel(js.ID) //nolint:errcheck // already-terminal is fine
		}
	}
	for _, id := range st.jobIDs {
		if id != "" {
			e.sched.Await(context.Background(), id) //nolint:errcheck
		}
	}

	table, err := e.buildTable(st)
	st.mu.Lock()
	st.table = table
	if err != nil {
		st.tableErr = err.Error()
	}
	st.mu.Unlock()
}

// errSweepCancelled aborts the run loop's submission passes.
var errSweepCancelled = errors.New("sweep: cancelled")

// submit pushes one spec into the scheduler, waiting out queue-full
// backpressure (the sweep is a batch producer; blocking here is the
// correct throttle). A cancelled sweep stops submitting — including
// mid-backpressure.
func (e *Engine) submit(st *sweepState, spec scenario.Spec) (sched.JobStatus, error) {
	for {
		if st.isCancelled() {
			return sched.JobStatus{}, errSweepCancelled
		}
		js, err := e.sched.Submit(spec)
		if !errors.Is(err, sched.ErrQueueFull) {
			return js, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Cancel aborts a running sweep: jobs not yet submitted stay that way,
// and every submitted, still-live job is cancelled through the
// scheduler. Jobs that already finished keep their results — results
// are content-addressed, so a caller abandoning a sweep (e.g. a fleet
// coordinator cancelling the losing copy of a hedged shard) loses
// nothing already computed. Cancelling a finished sweep is a no-op.
func (e *Engine) Cancel(id string) error {
	e.mu.Lock()
	st, ok := e.sweeps[id]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSweep, id)
	}
	st.mu.Lock()
	st.cancelled = true
	ids := append([]string(nil), st.jobIDs...)
	st.mu.Unlock()
	for _, jid := range ids {
		if jid != "" {
			e.sched.Cancel(jid) //nolint:errcheck // already-terminal is fine
		}
	}
	return nil
}

// Status snapshots a sweep by ID.
func (e *Engine) Status(id string) (Status, error) {
	e.mu.Lock()
	st, ok := e.sweeps[id]
	e.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrUnknownSweep, id)
	}
	return e.snapshot(st), nil
}

// List snapshots every sweep in start order.
func (e *Engine) List() []Status {
	e.mu.Lock()
	ids := append([]string(nil), e.order...)
	e.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if s, err := e.Status(id); err == nil {
			out = append(out, s)
		}
	}
	return out
}

// Await blocks until the sweep finishes or ctx expires.
func (e *Engine) Await(ctx context.Context, id string) (Status, error) {
	e.mu.Lock()
	st, ok := e.sweeps[id]
	e.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrUnknownSweep, id)
	}
	select {
	case <-st.done:
		return e.snapshot(st), nil
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// snapshot assembles the live status of one sweep.
func (e *Engine) snapshot(st *sweepState) Status {
	st.mu.Lock()
	ids := append([]string(nil), st.jobIDs...)
	errs := append([]string(nil), st.jobErrs...)
	cancelled := st.cancelled
	out := Status{
		ID:         st.id,
		Name:       st.name,
		State:      "running",
		Total:      len(st.specs),
		Seeds:      len(st.seeds),
		StartedAt:  st.started,
		FinishedAt: st.finished,
		Table:      st.table,
		TableError: st.tableErr,
	}
	st.mu.Unlock()
	select {
	case <-st.done:
		out.State = "done"
		if cancelled {
			out.State = "cancelled"
		}
	default:
	}

	out.Jobs = make([]JobView, len(st.specs))
	for i, spec := range st.specs {
		jv := JobView{Spec: spec, State: "pending"}
		switch {
		case errs[i] != "":
			jv.State = "failed"
			jv.Error = errs[i]
			out.Failed++
		case ids[i] != "":
			js, err := e.sched.Status(ids[i])
			if err != nil {
				jv.State = "failed"
				jv.Error = err.Error()
				out.Failed++
				break
			}
			jv.JobID = js.ID
			jv.State = js.State.String()
			jv.Cached = js.Cached
			jv.FromStore = js.FromStore
			jv.WarmStartHour = js.WarmStartHour
			jv.PhysicsReplay = js.PhysicsReplay
			jv.WallSecs = js.WallSeconds
			if js.Err != nil {
				jv.Error = js.Err.Error()
				var pe *core.PhysicsError
				var we *sched.WatchdogError
				switch {
				case errors.As(js.Err, &pe):
					jv.FailureKind = "physics"
					out.PhysicsFailures++
				case errors.As(js.Err, &we):
					jv.FailureKind = "watchdog"
					out.WatchdogCancels++
				}
			}
			if js.Result != nil {
				jv.PeakO3 = js.Result.PeakO3
				jv.VirtualSecs = js.Result.Ledger.Total
			}
			switch js.State {
			case sched.Done:
				out.Completed++
				if js.Cached {
					out.CacheHits++
				}
				if js.FromStore {
					out.StoreHits++
				}
				if js.PhysicsReplay {
					out.PhysicsReplays++
				} else if js.WarmStartHour > 0 {
					out.WarmStarts++
				}
			case sched.Failed:
				out.Failed++
			case sched.Cancelled:
				out.Cancelled++
			}
		}
		out.Jobs[i] = jv
	}
	return out
}

// buildTable aggregates the finished jobs into the policy table. Failed
// or cancelled jobs are skipped; an error here means the analysis layer
// itself failed.
func (e *Engine) buildTable(st *sweepState) ([]PolicyRow, error) {
	type evaluator struct {
		an     *analysis.Analyzer
		layers int
	}
	evaluators := make(map[string]evaluator)
	var rows []PolicyRow
	for i, spec := range st.specs {
		st.mu.Lock()
		id := st.jobIDs[i]
		st.mu.Unlock()
		if id == "" {
			continue
		}
		js, err := e.sched.Status(id)
		if err != nil || js.State != sched.Done || js.Result == nil {
			continue
		}
		ev, ok := evaluators[spec.Dataset]
		if !ok {
			ds, err := datasets.ByName(spec.Dataset)
			if err != nil {
				return rows, err
			}
			an, err := analysis.New(ds.Grid(), ds.Mechanism())
			if err != nil {
				return rows, err
			}
			ev = evaluator{an: an, layers: ds.Shape.Layers}
			evaluators[spec.Dataset] = ev
		}
		ex, err := ev.an.Exceedance(js.Result.Final, ev.layers, "O3", analysis.OzoneNAAQS1Hour, nil)
		if err != nil {
			return rows, err
		}
		rows = append(rows, PolicyRow{
			Spec:           spec,
			PeakO3:         js.Result.PeakO3,
			PeakCell:       js.Result.PeakO3Cell,
			ExceedanceKm2:  ex.AreaKm2,
			ExceedanceFrac: ex.AreaFrac,
			VirtualSeconds: js.Result.Ledger.Total,
			Efficiency:     js.Result.Efficiency,
			Cached:         js.Cached,
			FromStore:      js.FromStore,
			WarmStartHour:  js.WarmStartHour,
			PhysicsReplay:  js.PhysicsReplay,
		})
	}
	return rows, nil
}
