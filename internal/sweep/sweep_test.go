package sweep

import (
	"context"
	"testing"
	"time"

	"airshed/internal/scenario"
	"airshed/internal/sched"
	"airshed/internal/store"
)

func miniBase(hours int) scenario.Spec {
	return scenario.Spec{Dataset: "mini", Machine: "t3e", Nodes: 2, Hours: hours}
}

func newEngine(t testing.TB, dir string, workers int) (*Engine, *sched.Scheduler) {
	t.Helper()
	opts := sched.Options{Workers: workers, GoParallel: true}
	if dir != "" {
		st, err := store.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		opts.Store = st
	}
	s := sched.New(opts)
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	return NewEngine(s), s
}

func awaitSweep(t testing.TB, e *Engine, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	st, err := e.Await(ctx, id)
	if err != nil {
		t.Fatalf("Await(%s): %v", id, err)
	}
	return st
}

func TestExpandCrossProductAndDedupe(t *testing.T) {
	req := Request{
		Base: miniBase(2),
		Grid: Grid{
			NOxScales: []float64{1.0, 0.7},
			VOCScales: []float64{1.0, 0.8},
			Nodes:     []int{2, 4},
		},
	}
	specs, err := req.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 8 {
		t.Fatalf("expanded to %d specs, want 8", len(specs))
	}
	seen := map[string]bool{}
	for _, sp := range specs {
		if seen[sp.Hash()] {
			t.Errorf("duplicate spec %v", sp)
		}
		seen[sp.Hash()] = true
	}

	// A duplicate axis value collapses.
	req.Grid.Nodes = []int{2, 2}
	specs, err = req.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Errorf("duplicated axis: %d specs, want 4", len(specs))
	}
}

func TestExpandRejectsBadSpecsAndOversizedGrids(t *testing.T) {
	req := Request{Base: miniBase(1), Grid: Grid{Datasets: []string{"nope"}}}
	if _, err := req.Expand(); err == nil {
		t.Error("unknown dataset accepted")
	}
	big := make([]int, 40)
	for i := range big {
		big[i] = i + 3
	}
	req = Request{Base: miniBase(1), Grid: Grid{Nodes: big, NOxScales: make([]float64, 40), VOCScales: make([]float64, 40)}}
	if _, err := req.Expand(); err == nil {
		t.Error("oversized grid accepted")
	}
}

func TestSeedSpecsFindsSharedPrefixes(t *testing.T) {
	base := miniBase(3)
	a := base
	a.NOxScale, a.ControlStartHour = 0.7, 2
	b := base
	b.NOxScale, b.ControlStartHour = 0.5, 2
	seeds := SeedSpecs([]scenario.Spec{a, b})
	if len(seeds) != 1 {
		t.Fatalf("got %d seeds, want 1: %v", len(seeds), seeds)
	}
	s := seeds[0]
	if s.Hours != 2 || s.NOxScale != 1.0 || s.ControlStartHour != 0 {
		t.Errorf("seed should be the 2-hour baseline, got %v", s)
	}

	// Same physics, different machines: the full run is the seed.
	c := base
	d := base
	d.Machine = "paragon"
	seeds = SeedSpecs([]scenario.Spec{c, d})
	if len(seeds) != 1 || seeds[0].Hours != 3 {
		t.Fatalf("machine family seeds = %v", seeds)
	}

	// Unrelated specs seed nothing.
	e := miniBase(1)
	f := miniBase(2)
	if seeds := SeedSpecs([]scenario.Spec{e, f}); len(seeds) != 0 {
		t.Errorf("unrelated specs produced seeds: %v", seeds)
	}
}

// A store-backed sweep over control variants must compute the shared
// baseline prefix once and warm-start every variant from it.
func TestSweepWarmStartsControlVariants(t *testing.T) {
	e, s := newEngine(t, t.TempDir(), 2)
	req := Request{
		Name: "controls",
		Base: miniBase(3),
		Grid: Grid{
			NOxScales:         []float64{0.7, 0.5},
			ControlStartHours: []int{2},
		},
	}
	st0, err := e.Start(req)
	if err != nil {
		t.Fatal(err)
	}
	if st0.Total != 2 || st0.Seeds != 1 {
		t.Fatalf("initial status: total=%d seeds=%d, want 2/1", st0.Total, st0.Seeds)
	}
	final := awaitSweep(t, e, st0.ID)
	if final.State != "done" || final.Completed != 2 || final.Failed != 0 {
		t.Fatalf("final status: %+v", final)
	}
	if final.WarmStarts != 2 {
		t.Errorf("want both variants warm-started, got %d (jobs: %+v)", final.WarmStarts, final.Jobs)
	}
	for _, jv := range final.Jobs {
		if jv.WarmStartHour != 2 {
			t.Errorf("job %v warm-started at %d, want 2", jv.Spec, jv.WarmStartHour)
		}
	}
	if len(final.Table) != 2 {
		t.Fatalf("policy table has %d rows, want 2: %q", len(final.Table), final.TableError)
	}
	// The two control levels must actually change the chemistry (a
	// warm-start bug that replays the wrong suffix would collapse them).
	if final.Table[0].PeakO3 == final.Table[1].PeakO3 {
		t.Errorf("both control levels report peak %g", final.Table[0].PeakO3)
	}
	if c := s.Counters(); c.WarmStarts != 2 {
		t.Errorf("scheduler counters: %+v", c)
	}
}

// A machine/mode sweep over one physics runs the numerics once; the
// other jobs are materialised from stored records.
func TestSweepPhysicsReplayAcrossMachines(t *testing.T) {
	e, s := newEngine(t, t.TempDir(), 2)
	req := Request{
		Base: miniBase(2),
		Grid: Grid{Machines: []string{"t3e", "paragon"}, Nodes: []int{2, 4}},
	}
	st0, err := e.Start(req)
	if err != nil {
		t.Fatal(err)
	}
	final := awaitSweep(t, e, st0.ID)
	if final.Completed != 4 || final.Failed != 0 {
		t.Fatalf("final status: %+v", final)
	}
	// The seed computed the physics; all four jobs then replay it (the
	// seed equals one of the jobs, which resolves as a cache hit).
	if got := final.PhysicsReplays + final.CacheHits + final.StoreHits; got != 4 {
		t.Errorf("replays+hits = %d, want all 4 jobs served without simulating (status %+v)", got, final)
	}
	if c := s.Counters(); c.PhysicsReplays < 3 {
		t.Errorf("scheduler counters: %+v", c)
	}
}

func TestSweepWithoutStoreStillCompletes(t *testing.T) {
	e, _ := newEngine(t, "", 2)
	st0, err := e.Start(Request{Base: miniBase(1), Grid: Grid{Nodes: []int{2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if st0.Seeds != 0 {
		t.Errorf("store-less sweep scheduled %d seeds", st0.Seeds)
	}
	final := awaitSweep(t, e, st0.ID)
	if final.Completed != 2 || len(final.Table) != 2 {
		t.Fatalf("final status: %+v", final)
	}
}

func TestUnknownSweep(t *testing.T) {
	e, _ := newEngine(t, "", 1)
	if _, err := e.Status("s9999"); err == nil {
		t.Error("unknown sweep id accepted")
	}
}

// BenchmarkSweepWarmStart measures the batch-study payoff: a sweep of
// emission-control variants against a store holding their shared
// baseline prefix. Compare with BenchmarkSweepColdRuns, which executes
// the same variants with no store — the warm sweep's per-iteration time
// must come in well below the cold one (it simulates one hour per
// variant instead of three).
func BenchmarkSweepWarmStart(b *testing.B) {
	dir := b.TempDir()
	req := Request{
		Base: miniBase(3),
		Grid: Grid{NOxScales: []float64{0.8, 0.6, 0.4}, ControlStartHours: []int{2}},
	}
	// Pre-seed the store with the shared baseline prefix.
	{
		e, _ := newEngine(b, dir, 2)
		st0, err := e.Start(Request{Base: miniBase(3).PrefixSpec(2)})
		if err != nil {
			b.Fatal(err)
		}
		awaitSweep(b, e, st0.ID)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Fresh scheduler per iteration: the LRU cache must not mask the
		// store path. Checkpoints written by iteration n-1 make later
		// iterations at least as warm — which is the feature.
		e, _ := newEngine(b, dir, 2)
		b.StartTimer()
		st0, err := e.Start(req)
		if err != nil {
			b.Fatal(err)
		}
		final := awaitSweep(b, e, st0.ID)
		if final.Completed != 3 {
			b.Fatalf("sweep did not complete: %+v", final)
		}
		if final.WarmStarts+final.PhysicsReplays+final.StoreHits != 3 {
			b.Fatalf("iteration ran cold: %+v", final)
		}
	}
}

// BenchmarkSweepColdRuns is the baseline for BenchmarkSweepWarmStart:
// the identical sweep with no artifact store.
func BenchmarkSweepColdRuns(b *testing.B) {
	req := Request{
		Base: miniBase(3),
		Grid: Grid{NOxScales: []float64{0.8, 0.6, 0.4}, ControlStartHours: []int{2}},
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, _ := newEngine(b, "", 2)
		b.StartTimer()
		st0, err := e.Start(req)
		if err != nil {
			b.Fatal(err)
		}
		final := awaitSweep(b, e, st0.ID)
		if final.Completed != 3 {
			b.Fatalf("sweep did not complete: %+v", final)
		}
	}
}
