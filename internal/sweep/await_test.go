package sweep

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestAwaitContextCancellation: Await must honour its context while the
// sweep is mid-flight — returning ctx.Err() promptly, leaving the sweep
// running — and a later Await with room to breathe still sees it finish.
func TestAwaitContextCancellation(t *testing.T) {
	e, _ := newEngine(t, "", 1) // one worker serialises the jobs
	st, err := e.Start(Request{
		Base: miniBase(2),
		Grid: Grid{NOxScales: []float64{1.0, 0.8, 0.6}},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	begin := time.Now()
	if _, err := e.Await(ctx, st.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Await under expired context returned %v, want deadline exceeded", err)
	}
	if waited := time.Since(begin); waited > 5*time.Second {
		t.Errorf("cancelled Await blocked %v", waited)
	}

	// The cancellation was the caller's, not the sweep's: it still runs
	// and still finishes.
	mid, err := e.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.State == "done" && mid.Completed != mid.Total {
		t.Errorf("inconsistent post-cancel snapshot: %+v", mid)
	}
	final := awaitSweep(t, e, st.ID)
	if final.State != "done" || final.Completed != 3 || final.Failed != 0 {
		t.Fatalf("sweep after cancelled Await: state=%s completed=%d failed=%d",
			final.State, final.Completed, final.Failed)
	}

	// Await on an unknown ID fails regardless of context state.
	if _, err := e.Await(context.Background(), "s9999"); !errors.Is(err, ErrUnknownSweep) {
		t.Errorf("Await(unknown) = %v, want ErrUnknownSweep", err)
	}
}

// TestStatusListMidFlightConsistency polls Status and List continuously
// while a sweep runs, checking every snapshot for internal consistency:
// the job count matches Total, every job is in a legal state, the
// outcome tallies never exceed Total, completion never regresses, and
// the sweep appears in List with the same identity throughout.
func TestStatusListMidFlightConsistency(t *testing.T) {
	e, _ := newEngine(t, "", 1)
	st, err := e.Start(Request{
		Base: miniBase(1),
		Grid: Grid{NOxScales: []float64{1.0, 0.9, 0.8, 0.7}},
	})
	if err != nil {
		t.Fatal(err)
	}

	legal := map[string]bool{
		"pending": true, "queued": true, "running": true,
		"done": true, "failed": true, "cancelled": true,
	}
	check := func(s Status) {
		t.Helper()
		if len(s.Jobs) != s.Total {
			t.Fatalf("snapshot lists %d jobs, Total=%d", len(s.Jobs), s.Total)
		}
		finished := 0
		for _, j := range s.Jobs {
			if !legal[j.State] {
				t.Fatalf("job in illegal state %q: %+v", j.State, j)
			}
			if j.State == "done" || j.State == "failed" || j.State == "cancelled" {
				finished++
			}
		}
		if got := s.Completed + s.Failed + s.Cancelled; got != finished {
			t.Fatalf("tallies %d (completed=%d failed=%d cancelled=%d) disagree with %d finished jobs",
				got, s.Completed, s.Failed, s.Cancelled, finished)
		}
		if s.Completed+s.Failed+s.Cancelled > s.Total {
			t.Fatalf("tallies exceed Total: %+v", s)
		}
		if s.State == "done" && s.Completed+s.Failed+s.Cancelled != s.Total {
			t.Fatalf("done sweep with unfinished jobs: %+v", s)
		}
	}

	prevCompleted := 0
	deadline := time.Now().Add(5 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("sweep did not finish")
		}
		snap, err := e.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		check(snap)
		if snap.Completed < prevCompleted {
			t.Fatalf("completion regressed: %d -> %d", prevCompleted, snap.Completed)
		}
		prevCompleted = snap.Completed

		// List must agree with Status about this sweep's identity.
		found := false
		for _, ls := range e.List() {
			check(ls)
			if ls.ID == st.ID {
				found = true
				if ls.Total != snap.Total || ls.Name != snap.Name {
					t.Fatalf("List entry diverges from Status: %+v vs %+v", ls, snap)
				}
			}
		}
		if !found {
			t.Fatalf("sweep %s missing from List", st.ID)
		}
		if snap.State == "done" {
			if snap.Completed != 4 || snap.Failed != 0 {
				t.Fatalf("final snapshot: %+v", snap)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}
