package airshed

import (
	"context"
	"sync"
	"testing"

	"airshed/internal/core"
	"airshed/internal/scenario"
	"airshed/internal/sched"
	"airshed/internal/sr"
	"airshed/internal/sweep"
)

// The SR serving-path benchmarks back the ≥10⁴× claim in DESIGN.md §6f:
// BenchmarkSRPredict measures one scenario answered by matrix–vector
// product against a prebuilt source–receptor matrix; BenchmarkSRColdRun
// measures the same scenario answered the pre-SR way, one full cold
// simulation. Both run the identical mini/1h physics so the ratio is
// the serving speedup, recorded in BENCH_sr.json by
// scripts/bench_compare.sh.

var (
	srBenchMu sync.Mutex
	srBenchM  *sr.Matrix
)

func srBenchSpec() scenario.Spec {
	return scenario.Spec{Dataset: "mini", Machine: "gohost", Nodes: 1, Hours: 1}
}

// srBenchMatrix builds (once per process) the mini matrix the predict
// benchmark serves from; build time is setup, not measured.
func srBenchMatrix(b *testing.B) *sr.Matrix {
	b.Helper()
	srBenchMu.Lock()
	defer srBenchMu.Unlock()
	if srBenchM != nil {
		return srBenchM
	}
	s := sched.New(sched.Options{Workers: 2, GoParallel: true})
	defer s.Shutdown(context.Background()) //nolint:errcheck
	m, err := sr.NewBuilder(sweep.NewEngine(s)).Build(context.Background(),
		sr.Set{Base: srBenchSpec(), Groups: 4})
	if err != nil {
		b.Fatal(err)
	}
	srBenchM = m
	return m
}

func BenchmarkSRPredict(b *testing.B) {
	m := srBenchMatrix(b)
	q := sr.Query{NOxScale: 0.9, VOCScale: 1.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSRColdRun is the baseline the SR path replaces: answering the
// same emission scenario with a full simulation.
func BenchmarkSRColdRun(b *testing.B) {
	spec := srBenchSpec()
	spec.NOxScale, spec.VOCScale = 0.9, 1.1
	cfg, err := spec.Config()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
