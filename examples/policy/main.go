// Policy: the use case the paper gives for Airshed — "An important use of
// Airshed is to help in the development of environmental policies. The
// effect of air pollution control measures can be evaluated at a low
// cost making it possible to select the best strategy under a given set
// of constraints."
//
// This example evaluates four emission-control strategies for the Los
// Angeles basin by simulating the same day under each and comparing peak
// ground-level ozone, the area and population exceeding the era's 1-hour
// ozone standard (0.12 ppm), and the change in secondary pollutants — the
// classic NOx-vs-VOC control question of urban photochemistry.
package main

import (
	"flag"
	"fmt"
	"os"

	"airshed"
	"airshed/internal/analysis"
	"airshed/internal/core"
	"airshed/internal/popexp"
	"airshed/internal/report"
)

func main() {
	hours := flag.Int("hours", 12, "simulated hours per strategy (cover the photochemical day)")
	flag.Parse()
	if err := run(*hours); err != nil {
		fmt.Fprintln(os.Stderr, "policy:", err)
		os.Exit(1)
	}
}

func run(hours int) error {
	strategies := []struct {
		name     string
		nox, voc float64
	}{
		{"baseline inventory", 1.00, 1.00},
		{"25% NOx reduction", 0.75, 1.00},
		{"25% VOC reduction", 1.00, 0.75},
		{"25% combined reduction", 0.75, 0.75},
	}

	fmt.Printf("Evaluating %d control strategies over the Los Angeles basin (%d h each)...\n\n",
		len(strategies), hours)

	type outcome struct {
		res *core.Result
		ex  *analysis.Exceedance
	}
	outcomes := make([]outcome, 0, len(strategies))

	var an *analysis.Analyzer
	var pop *popexp.Population
	for _, s := range strategies {
		ds, err := airshed.LAControls(s.nox, s.voc)
		if err != nil {
			return err
		}
		if an == nil {
			if an, err = analysis.New(ds.Grid(), ds.Mechanism()); err != nil {
				return err
			}
			if pop, err = popexp.SyntheticPopulation(ds.Grid(), 90e3, 100e3, 40e3, 12e6); err != nil {
				return err
			}
		}
		res, err := airshed.Run(airshed.Config{
			Dataset:    ds,
			Machine:    airshed.CrayT3E(),
			Nodes:      16,
			Hours:      hours,
			GoParallel: true,
		})
		if err != nil {
			return err
		}
		ex, err := an.Exceedance(res.Final, ds.Shape.Layers, "O3", analysis.OzoneNAAQS1Hour, pop)
		if err != nil {
			return err
		}
		outcomes = append(outcomes, outcome{res, ex})
		fmt.Printf("  %-24s done (peak O3 %.4f ppm, %d cells above the 0.12 ppm standard)\n",
			s.name, res.PeakO3, ex.Cells)
	}
	fmt.Println()

	base := outcomes[0].res
	tb := report.NewTable("Control strategy evaluation (end of run)",
		"Strategy", "Peak O3 (ppm)", "vs baseline %",
		"Exceedance area (km2)", "Population exposed", "Steps")
	for i, s := range strategies {
		o := outcomes[i]
		tb.AddRow(s.name, o.res.PeakO3, 100*(o.res.PeakO3-base.PeakO3)/base.PeakO3,
			o.ex.AreaKm2, o.ex.Population, o.res.TotalSteps)
	}
	if err := tb.Write(os.Stdout); err != nil {
		return err
	}

	// Secondary pollutant response of the most aggressive strategy.
	ds, err := airshed.LA()
	if err != nil {
		return err
	}
	deltas, err := an.CompareRuns(base.Final, outcomes[3].res.Final, ds.Shape.Layers,
		[]string{"O3", "NO2", "HNO3", "PAN", "ASO4"})
	if err != nil {
		return err
	}
	dt := report.NewTable("Combined 25% reduction vs baseline, ground-layer changes",
		"Species", "Baseline max (ppm)", "Strategy max (ppm)", "Max change %", "Mean change %")
	for _, d := range deltas {
		dt.AddRow(d.Species, d.BaseMax, d.AltMax, d.MaxChangePct, d.MeanChangePct)
	}
	if err := dt.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Println("Note: in VOC-limited urban cores (like this scenario's), NOx-only cuts can raise")
	fmt.Println("peak ozone while VOC cuts lower it — the trade-off airshed models exist to expose.")
	return nil
}
