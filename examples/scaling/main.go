// Scaling: the paper's performance-portability study in miniature — run
// the Airshed numerics once, then price the identical computation on the
// Intel Paragon, Cray T3D and Cray T3E across node counts, in both the
// data-parallel and the pipelined task-parallel mode, and check the
// analytic model's prediction against each measurement.
package main

import (
	"flag"
	"fmt"
	"os"

	"airshed"
	"airshed/internal/report"
)

func main() {
	hours := flag.Int("hours", 4, "simulated hours to trace")
	dataset := flag.String("dataset", "la", "data set: la, ne or mini")
	flag.Parse()
	if err := run(*hours, *dataset); err != nil {
		fmt.Fprintln(os.Stderr, "scaling:", err)
		os.Exit(1)
	}
}

func run(hours int, dataset string) error {
	ds, err := airshed.DatasetByName(dataset)
	if err != nil {
		return err
	}
	fmt.Printf("Tracing %s (%v) for %d hours...\n\n", ds.Name, ds.Shape, hours)
	res, err := airshed.Run(airshed.Config{
		Dataset:    ds,
		Machine:    airshed.CrayT3E(),
		Nodes:      1,
		Hours:      hours,
		GoParallel: true,
	})
	if err != nil {
		return err
	}
	tr := res.Trace

	machines := []*airshed.MachineProfile{airshed.CrayT3E(), airshed.CrayT3D(), airshed.IntelParagon()}
	nodes := []int{1, 4, 8, 16, 32, 64, 128}

	tb := report.NewTable("Execution time (s), data-parallel",
		"Nodes", machines[0].Name, machines[1].Name, machines[2].Name)
	sp := report.NewTable("Speedup over 1 node",
		"Nodes", machines[0].Name, machines[1].Name, machines[2].Name)
	seq := map[string]float64{}
	for _, p := range nodes {
		trow := []interface{}{p}
		srow := []interface{}{p}
		for _, prof := range machines {
			rr, err := airshed.Replay(tr, prof, p, airshed.DataParallel)
			if err != nil {
				return err
			}
			if p == 1 {
				seq[prof.Name] = rr.Ledger.Total
			}
			trow = append(trow, rr.Ledger.Total)
			srow = append(srow, seq[prof.Name]/rr.Ledger.Total)
		}
		tb.AddRow(trow...)
		sp.AddRow(srow...)
	}
	if err := tb.Write(os.Stdout); err != nil {
		return err
	}
	if err := sp.Write(os.Stdout); err != nil {
		return err
	}

	// Task parallelism: the Section 5 pipeline on the Paragon.
	tt := report.NewTable("Task parallelism on the Intel Paragon",
		"Nodes", "Data-parallel (s)", "Task+data (s)", "Improvement %")
	for _, p := range []int{8, 16, 32, 64} {
		dp, err := airshed.Replay(tr, airshed.IntelParagon(), p, airshed.DataParallel)
		if err != nil {
			return err
		}
		tp, err := airshed.Replay(tr, airshed.IntelParagon(), p, airshed.TaskParallel)
		if err != nil {
			return err
		}
		tt.AddRow(p, dp.Ledger.Total, tp.Ledger.Total,
			100*(dp.Ledger.Total-tp.Ledger.Total)/dp.Ledger.Total)
	}
	if err := tt.Write(os.Stdout); err != nil {
		return err
	}

	// The analytic model's accuracy.
	pm := report.NewTable("Analytic model vs measurement (Cray T3E)",
		"Nodes", "Predicted (s)", "Measured (s)", "Error %")
	for _, p := range []int{4, 16, 64} {
		pred, err := airshed.Predict(tr, airshed.CrayT3E(), p)
		if err != nil {
			return err
		}
		meas, err := airshed.Replay(tr, airshed.CrayT3E(), p, airshed.DataParallel)
		if err != nil {
			return err
		}
		pm.AddRow(p, pred.Total, meas.Ledger.Total,
			100*(pred.Total-meas.Ledger.Total)/meas.Ledger.Total)
	}
	return pm.Write(os.Stdout)
}
