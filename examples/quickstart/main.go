// Quickstart: run the Airshed model on the Los Angeles basin data set for
// a few hours on 16 virtual Cray T3E nodes, then print the component time
// ledger and basic air-quality diagnostics — the smallest end-to-end use
// of the library's public API.
package main

import (
	"flag"
	"fmt"
	"os"

	"airshed"
)

func main() {
	hours := flag.Int("hours", 4, "simulated hours")
	nodes := flag.Int("nodes", 16, "virtual T3E nodes")
	flag.Parse()

	if err := run(*hours, *nodes); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run(hours, nodes int) error {
	ds, err := airshed.LA()
	if err != nil {
		return err
	}
	fmt.Printf("Airshed quickstart: %s data set, concentration array %v\n", ds.Name, ds.Shape)
	fmt.Printf("grid: %s\n\n", ds.Grid().Stats())

	res, err := airshed.Run(airshed.Config{
		Dataset:    ds,
		Machine:    airshed.CrayT3E(),
		Nodes:      nodes,
		Hours:      hours,
		Mode:       airshed.DataParallel,
		GoParallel: true,
	})
	if err != nil {
		return err
	}

	fmt.Printf("virtual execution time on %d T3E nodes: %.1f s for %d simulated hours\n",
		nodes, res.Ledger.Total, hours)
	fmt.Print(res.Ledger.String())
	fmt.Printf("\ninner steps taken: %d (determined at runtime from the hourly winds)\n", res.TotalSteps)
	fmt.Printf("peak ground-level ozone: %.4f ppm at grid cell %d\n", res.PeakO3, res.PeakO3Cell)

	// The same trace priced for the two other machines of the paper —
	// performance portability in one loop.
	fmt.Println("\nthe identical run priced for the paper's other machines:")
	for _, prof := range []*airshed.MachineProfile{airshed.CrayT3D(), airshed.IntelParagon()} {
		rr, err := airshed.Replay(res.Trace, prof, nodes, airshed.DataParallel)
		if err != nil {
			return err
		}
		fmt.Printf("  %-14s %8.1f s\n", prof.Name, rr.Ledger.Total)
	}
	return nil
}
