// Exposure: the paper's Section 6 multidisciplinary application — Airshed
// coupled with the population exposure model (PopExp) through the
// foreign-module interface. The Airshed simulation runs natively and
// writes hourly concentration snapshots; PopExp runs as a genuinely
// separate PVM-parallel module consuming them, with the hourly fields
// crossing the coupling boundary through typed pack/unpack buffers —
// exactly the representative-task pattern of the paper's Figure 10.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"airshed"
	frn "airshed/internal/foreign"
	"airshed/internal/hourio"
	"airshed/internal/popexp"
	"airshed/internal/report"
)

func main() {
	hours := flag.Int("hours", 6, "simulated hours")
	workers := flag.Int("workers", 4, "PVM PopExp worker tasks")
	flag.Parse()
	if err := run(*hours, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "exposure:", err)
		os.Exit(1)
	}
}

func run(hours, workers int) error {
	ds, err := airshed.LA()
	if err != nil {
		return err
	}

	// Population: ~12 million people concentrated on the urban core.
	pop, err := popexp.SyntheticPopulation(ds.Grid(), 90e3, 100e3, 40e3, 12e6)
	if err != nil {
		return err
	}
	model, err := popexp.NewModel(ds.Mechanism())
	if err != nil {
		return err
	}
	coupler, err := frn.NewCoupler(model, pop, ds.Shape.Species, ds.Shape.Layers, workers)
	if err != nil {
		return err
	}
	defer coupler.Stop()

	fmt.Printf("Airshed + PopExp: %d hours over the LA basin, PopExp as a PVM foreign module (%d workers)\n\n",
		hours, workers)

	// Run Airshed once, writing hourly snapshots.
	snapDir, err := os.MkdirTemp("", "airshed-exposure-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(snapDir)
	res, err := airshed.Run(airshed.Config{
		Dataset:     ds,
		Machine:     airshed.CrayT3E(),
		Nodes:       16,
		Hours:       hours,
		SnapshotDir: snapDir,
		GoParallel:  true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Airshed done: %.1f virtual seconds on 16 T3E nodes, peak O3 %.4f ppm\n\n",
		res.Ledger.Total, res.PeakO3)

	// Feed every hourly snapshot through the foreign module.
	total := model.NewExposure()
	for h := 0; h < hours; h++ {
		f, err := os.Open(filepath.Join(snapDir, fmt.Sprintf("hour_%03d.snap", h)))
		if err != nil {
			return err
		}
		_, _, _, _, conc, _, err := hourio.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return err
		}
		exp, err := coupler.ProcessHour(conc)
		if err != nil {
			return err
		}
		total.Add(exp)
	}

	tb := report.NewTable(
		fmt.Sprintf("Population dose by cohort over %d hours (person-ppm-hours)", total.Hours),
		append([]string{"Cohort"}, popexp.TrackedSpecies...)...)
	for c := range total.Dose {
		row := []interface{}{fmt.Sprintf("cohort %d", c)}
		for _, v := range total.Dose[c] {
			row = append(row, v)
		}
		tb.AddRow(row...)
	}
	if err := tb.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("population risk index: %.3f\n", model.RiskIndex(total))
	st := coupler.Stats()
	fmt.Printf("coupling boundary traffic: %d messages, %.2f MB\n",
		st.MsgsSent+st.MsgsRecv, float64(st.BytesSent+st.BytesRecv)/1e6)
	return nil
}
