module airshed

go 1.22
